"""Scenario workload subsystem: DSL, registry, reproducibility, serving."""

import numpy as np
import pytest

from repro.net import build_scenario, scenario_names
from repro.net.scenarios import (PhaseDef, Scenario, TrafficBand,
                                 lerp_profile, register_scenario,
                                 unregister_scenario)
from repro.net.synth.base import generate_flow, random_flow_key
from repro.net.synth.profiles import dataset_profiles
from repro.serving import EngineConfig, PegasusEngine

BUILTIN_FAMILIES = ("attack_flood", "concept_drift", "diurnal",
                    "flow_churn", "heavy_hitters", "microburst")


def tiny(name, seed=0, scale=0.25):
    return build_scenario(name).generate(seed=seed, flows_scale=scale)


class TestRegistry:
    def test_builtin_families_registered(self):
        assert set(BUILTIN_FAMILIES) <= set(scenario_names())
        assert len(scenario_names()) >= 6

    def test_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            build_scenario("nope")

    def test_one_call_registration(self):
        profile = dataset_profiles("peerrush")[0]
        register_scenario("tmp-custom", lambda flows=4, **_: Scenario(
            name="tmp-custom",
            phases=(PhaseDef("only", 5.0, (TrafficBand(profile, flows),)),)))
        try:
            w = build_scenario("tmp-custom", flows=2).generate(seed=0)
            assert w.scenario == "tmp-custom"
            assert [s.name for s in w.phases] == ["only"]
            with pytest.raises(ValueError, match="already registered"):
                register_scenario("tmp-custom", lambda **_: None)
        finally:
            unregister_scenario("tmp-custom")
        assert "tmp-custom" not in scenario_names()

    def test_duplicate_phase_names_rejected(self):
        profile = dataset_profiles("peerrush")[0]
        band = (TrafficBand(profile, 1),)
        with pytest.raises(ValueError, match="duplicate phase"):
            Scenario(name="bad", phases=(PhaseDef("a", 1.0, band),
                                         PhaseDef("a", 1.0, band)))

    def test_band_validation(self):
        profile = dataset_profiles("peerrush")[0]
        with pytest.raises(ValueError, match="ramp"):
            TrafficBand(profile, 1, ramp="sideways")
        with pytest.raises(ValueError, match="key_pool"):
            TrafficBand(profile, 1, key_pool=0)
        with pytest.raises(ValueError, match="flows"):
            TrafficBand(profile, -1)

    def test_phase_and_generate_validation(self):
        profile = dataset_profiles("peerrush")[0]
        band = (TrafficBand(profile, 1),)
        with pytest.raises(ValueError, match="duration"):
            PhaseDef("a", 0.0, band)
        with pytest.raises(ValueError, match="no phases"):
            Scenario(name="empty", phases=())
        scenario = Scenario(name="one", phases=(PhaseDef("a", 1.0, band),))
        with pytest.raises(ValueError, match="flows_scale"):
            scenario.generate(seed=0, flows_scale=0.0)


class TestMaterialization:
    @pytest.mark.parametrize("name", BUILTIN_FAMILIES)
    def test_reproducible_and_well_formed(self, name):
        w1, w2 = tiny(name, seed=3), tiny(name, seed=3)
        assert w1.n_packets == w2.n_packets > 0
        for a, b in zip(w1.trace.packets, w2.trace.packets):
            assert (a.ts, a.length, a.key) == (b.ts, b.length, b.key)
            assert np.array_equal(a.payload, b.payload)
        assert np.array_equal(w1.labels, w2.labels)
        # different seed -> different workload
        w3 = tiny(name, seed=4)
        assert w3.n_packets != w1.n_packets or any(
            a.ts != b.ts for a, b in zip(w1.trace.packets, w3.trace.packets))
        # time-ordered trace, labels aligned
        ts = np.asarray([p.ts for p in w1.trace.packets])
        assert (np.diff(ts) >= 0).all()
        assert len(w1.labels) == w1.n_packets

    @pytest.mark.parametrize("name", BUILTIN_FAMILIES)
    def test_phase_spans_partition_trace(self, name):
        w = tiny(name)
        spans = w.phases
        assert spans[0].start == 0 and spans[-1].stop == w.n_packets
        for a, b in zip(spans, spans[1:]):
            assert a.stop == b.start
            assert a.t_end == b.t_start
        # every packet's ts inside its span's window (last span absorbs tail)
        ts = np.asarray([p.ts for p in w.trace.packets])
        for span in spans[:-1]:
            if span.n_packets:
                assert ts[span.start] >= span.t_start
                assert ts[span.stop - 1] < span.t_end
        phase_idx = w.phase_labels()
        assert phase_idx.shape == (w.n_packets,)
        assert phase_idx[0] == 0 and phase_idx[-1] == len(spans) - 1

    def test_flows_scale(self):
        small = tiny("diurnal", scale=0.2)
        large = tiny("diurnal", scale=1.0)
        assert large.n_packets > 2 * small.n_packets

    def test_heavy_hitters_reuse_keys(self):
        w = tiny("heavy_hitters", scale=0.5)
        span = next(s for s in w.phases if s.name == "skewed")
        keys = [p.key.canonical()
                for p in w.trace.packets[span.start:span.stop]]
        counts = sorted((keys.count(k) for k in set(keys)), reverse=True)
        # Zipf reuse: the top keys carry far more packets than a fresh
        # random-key-per-flow workload (max ~ max_packets=24) could.
        assert counts[0] > 48

    def test_flow_churn_has_mice(self):
        w = tiny("flow_churn", scale=0.5)
        span = next(s for s in w.phases if s.name == "mice-storm-1")
        from collections import Counter
        per_flow = Counter(p.key.canonical()
                           for p in w.trace.packets[span.start:span.stop])
        assert sum(1 for c in per_flow.values() if c < 8) > 10

    def test_concept_drift_moves_statistics(self):
        w = tiny("concept_drift", scale=0.6)
        profiles = dataset_profiles("peerrush")
        a_label = profiles[0].label

        def mean_len(span_name):
            span = next(s for s in w.phases if s.name == span_name)
            lens = [p.length
                    for p, lbl in zip(w.trace.packets[span.start:span.stop],
                                      w.labels[span.start:span.stop])
                    if lbl == a_label]
            return float(np.mean(lens))

        # label-0 traffic keeps its label but drifts toward class 1's
        # (larger) packet-length statistics
        assert mean_len("stable-b") > mean_len("stable-a") + 100


class TestLerpProfile:
    def test_endpoints_and_identity_fields(self):
        a, b = dataset_profiles("peerrush")[:2]
        at0 = lerp_profile(a, b, 0.0)
        at1 = lerp_profile(a, b, 1.0)
        assert at0.ipd_mu == a.ipd_mu and at1.ipd_mu == b.ipd_mu
        assert at1.label == a.label and at1.name == a.name
        assert at1.header_template == a.header_template
        mid = lerp_profile(a, b, 0.5)
        assert min(a.ipd_mu, b.ipd_mu) <= mid.ipd_mu <= max(a.ipd_mu, b.ipd_mu)


class TestGenerateFlowKeyOverride:
    def test_key_override_same_packets(self):
        profile = dataset_profiles("peerrush")[0]
        key = random_flow_key(np.random.default_rng(9))
        f1 = generate_flow(profile, 5)
        f2 = generate_flow(profile, 5, key=key)
        assert f2.key == key.canonical()
        assert all(p.key == key for p in f2.packets)
        # same stream position -> identical packet sequence either way
        assert [p.length for p in f1.packets] == [p.length for p in f2.packets]
        assert [p.ts for p in f1.packets] == [p.ts for p in f2.packets]


class TestServeScenario:
    @pytest.fixture(scope="class")
    def engine_parts(self, compiled16):
        return compiled16, EngineConfig(feature_mode="stats", batch_size=64,
                                        decision_cache=True)

    def test_phasewise_equals_oneshot(self, engine_parts):
        compiled, config = engine_parts
        w = tiny("heavy_hitters", seed=1, scale=0.4)
        with PegasusEngine.from_compiled(compiled, config) as eng:
            rep = eng.serve(w)
        with PegasusEngine.from_compiled(compiled, config) as eng:
            ref = eng.serve(w.trace, labels=w.labels)
        assert rep.overall.decisions == ref.decisions
        assert rep.overall.n_packets == w.n_packets
        assert (rep.overall.cache_stats.hits, rep.overall.cache_stats.misses) \
            == (ref.cache_stats.hits, ref.cache_stats.misses)

    def test_per_phase_breakdown(self, engine_parts):
        compiled, config = engine_parts
        w = tiny("heavy_hitters", seed=1, scale=0.4)
        with PegasusEngine.from_compiled(compiled, config) as eng:
            rep = eng.serve(w)
        assert [s.name for s, _ in rep.phases] == \
            [s.name for s in w.phases]
        assert sum(r.n_packets for _, r in rep.phases) == w.n_packets
        assert sum(r.n_decisions for _, r in rep.phases) == \
            rep.overall.n_decisions
        # per-phase cache deltas sum to the overall counters
        assert sum(r.cache_stats.hits for _, r in rep.phases) == \
            rep.overall.cache_stats.hits
        # the skewed phase is where the repeating elephants live
        skewed = rep.phase("skewed")
        assert skewed.cache_stats.hit_rate > 0.3
        calm_hits = sum(r.cache_stats.hits for s, r in rep.phases
                        if s.name != "skewed")
        assert calm_hits < rep.overall.cache_stats.hits
        with pytest.raises(KeyError, match="no phase"):
            rep.phase("nope")

    def test_summary_shape(self, engine_parts):
        compiled, config = engine_parts
        rep_obj = None
        with PegasusEngine.from_compiled(compiled, config) as eng:
            rep_obj = eng.serve(build_scenario("microburst"),
                                         seed=3, flows_scale=0.2)
        s = rep_obj.summary()
        assert s["scenario"] == "microburst" and s["seed"] == 3
        assert set(s["phases"]) == {"calm-1", "burst-1", "calm-2",
                                    "burst-2", "calm-3"}
        for phase in s["phases"].values():
            assert {"t_start", "t_end", "pps", "accuracy",
                    "cache_hit_rate"} <= set(phase)

    def test_serve_scenario_sharded_topology(self, engine_parts):
        compiled, config = engine_parts
        from dataclasses import replace
        w = tiny("attack_flood", seed=2, scale=0.25)
        sharded = replace(config, topology="sharded", n_workers=2)
        with PegasusEngine.from_compiled(compiled, config) as eng:
            local = eng.serve(w)
        with PegasusEngine.from_compiled(compiled, sharded) as eng:
            shard = eng.serve(w)
        assert shard.overall.decisions == local.overall.decisions
        assert len(shard.overall.shard_seconds) == 2
