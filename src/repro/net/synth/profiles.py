"""Class profiles for the three benign datasets and the attack traffic.

Calibration targets (matching the paper's Table 5 ordering, not its absolute
numbers):

- **PeerRush** (eMule / uTorrent / Vuze): well-separated P2P apps. Statistical
  models reach high 0.8s, sequence models ~0.9, CNN-L ~0.99.
- **CICIOT** (Power / Idle / Interact): marginals overlap but length and IPD
  are *obliquely* coupled (``corr`` != 0), so axis-aligned trees (Leo) trail
  the MLP — the effect the paper reports (+7.3% for MLP-B over Leo here).
- **ISCXVPN** (7 classes): VPN-encrypted classes with heavily overlapping
  statistics; only payload structure separates them well, so statistical
  models sit in the 0.7s while CNN-L approaches 0.99.

Attack generators model USTC-TFC2016 malware families and a Kitsune-style
SSDP reflection flood as distributional shifts from all benign classes.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.net.flow import Flow
from repro.net.synth.base import ClassProfile, TrafficDataset, generate_flow
from repro.utils.rng import spawn_rngs

DATASET_NAMES = ("peerrush", "ciciot", "iscxvpn")
ATTACK_NAMES = ("Htbot", "Flood", "Cridex", "Virut", "Neris", "Geodo")


def _profiles_peerrush() -> list[ClassProfile]:
    return [
        ClassProfile(
            name="eMule", label=0,
            len_modes=[(380, 160, 0.7), (820, 180, 0.3)],
            ipd_mu=-6.8, ipd_sigma=0.9,
            len_period=4.0, len_amp=90.0, extra_len_jitter=70.0,
            header_template=b"\xe3\x9a\x01\x10\x4d\x55\x4c\x45\x00\x02\x01\x00",
            motif=b"\xed\x2e\xb1\x8c\x4a", motif_prob=0.95,
        ),
        ClassProfile(
            name="uTorrent", label=1,
            len_modes=[(1050, 220, 0.6), (260, 140, 0.4)],
            ipd_mu=-7.6, ipd_sigma=0.9,
            len_period=2.0, len_amp=70.0, extra_len_jitter=70.0,
            header_template=b"\x13BitTorrent \x70\x72\x6f",
            motif=b"\x64\x31\x3a\x61\x64", motif_prob=0.95,
        ),
        ClassProfile(
            name="Vuze", label=2,
            len_modes=[(640, 180, 0.5), (980, 200, 0.5)],
            ipd_mu=-6.1, ipd_sigma=1.0,
            len_period=7.0, len_amp=150.0, extra_len_jitter=70.0,
            header_template=b"\x00\x00\x00\x46AZMP\x01\x00\x00\x01",
            motif=b"\x41\x5a\x4d\x50\x9e", motif_prob=0.95,
        ),
    ]


def _profiles_ciciot() -> list[ClassProfile]:
    # Close means, oblique coupling, extra jitter: hard for axis-aligned splits.
    return [
        ClassProfile(
            name="Power", label=0,
            len_modes=[(450, 75, 1.0)],
            ipd_mu=-5.4, ipd_sigma=0.45, corr=0.55,
            len_period=5.0, len_amp=70.0, extra_len_jitter=30.0,
            header_template=b"\x16\x03\x03\x00\x50\x02\x00\x00",
            motif=b"\x70\x77\x72\x3a\x01", motif_prob=0.72,
        ),
        ClassProfile(
            name="Idle", label=1,
            len_modes=[(320, 70, 1.0)],
            ipd_mu=-4.4, ipd_sigma=0.45, corr=-0.55,
            len_period=11.0, len_amp=50.0, extra_len_jitter=30.0,
            header_template=b"\x16\x03\x03\x00\x3a\x01\x00\x00",
            motif=b"\x69\x64\x6c\x65\x02", motif_prob=0.72,
        ),
        ClassProfile(
            name="Interact", label=2,
            len_modes=[(580, 80, 1.0)],
            ipd_mu=-6.3, ipd_sigma=0.5, corr=0.0,
            len_period=3.0, len_amp=110.0, extra_len_jitter=30.0,
            header_template=b"\x16\x03\x03\x01\x10\x10\x00\x00",
            motif=b"\x69\x61\x63\x74\x03", motif_prob=0.72,
        ),
    ]


def _profiles_iscxvpn() -> list[ClassProfile]:
    # Seven VPN-tunnelled application classes: statistics overlap badly
    # (similar tunnel framing), payload motifs and timing texture differ.
    base_header = b"\x45\x00\x05\xdc\x00\x00\x40\x00"
    classes = [
        ("Email", (500, 110), -4.8, 4.0, 60.0, b"\x45\x4d\x4c\x31"),
        ("Chat", (380, 100), -4.4, 9.0, 55.0, b"\x43\x48\x54\x32"),
        ("Streaming", (980, 130), -6.8, 3.0, 80.0, b"\x53\x54\x52\x33"),
        ("FTP", (820, 120), -6.2, 2.0, 70.0, b"\x46\x54\x50\x34"),
        ("VoIP", (300, 90), -5.8, 6.0, 50.0, b"\x56\x4f\x50\x35"),
        ("P2P", (700, 120), -5.5, 5.0, 85.0, b"\x50\x32\x50\x36"),
        ("Browsing", (600, 115), -5.1, 7.0, 65.0, b"\x57\x57\x57\x37"),
    ]
    profiles = []
    for label, (name, (mean, std), ipd_mu, period, amp, motif) in enumerate(classes):
        # The applications tunnel through the same VPN framing but keep
        # application-layer structure: two header bytes carry a per-class
        # token (with the usual 5% noise), mirroring how real VPN payloads
        # still differ in record layout. Statistics stay fully shared.
        header = (base_header[:3] + bytes([0x40 + label])
                  + base_header[4:7] + motif[:1])
        profiles.append(ClassProfile(
            name=name, label=label,
            len_modes=[(mean, std, 1.0)],
            ipd_mu=ipd_mu, ipd_sigma=0.75,
            len_period=period, len_amp=amp, extra_len_jitter=60.0,
            header_template=header,
            motif=motif, motif_prob=0.93,
        ))
    return profiles


_PROFILE_FACTORIES = {
    "peerrush": _profiles_peerrush,
    "ciciot": _profiles_ciciot,
    "iscxvpn": _profiles_iscxvpn,
}


def _name_seed(name: str) -> int:
    """Stable default seed for a named generator.

    ``zlib.crc32``, not ``hash()``: string hashing is salted per interpreter
    run, which would silently break the "same call, same flows" contract
    for seedless callers.
    """
    return zlib.crc32(name.encode())


def dataset_profiles(name: str) -> list[ClassProfile]:
    """The class profiles of one named dataset."""
    try:
        return _PROFILE_FACTORIES[name.lower()]()
    except KeyError:
        raise ValueError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}") from None


def make_dataset(name: str, flows_per_class: int = 150,
                 seed: int | np.random.Generator | None = None) -> TrafficDataset:
    """Generate a full labelled dataset."""
    profiles = dataset_profiles(name)
    rngs = spawn_rngs(seed if seed is not None else _name_seed(name),
                      len(profiles))
    flows: list[Flow] = []
    for profile, rng in zip(profiles, rngs):
        t0 = 0.0
        for _ in range(flows_per_class):
            flow = generate_flow(profile, rng, start_ts=t0)
            flows.append(flow)
            t0 += float(rng.uniform(0.01, 0.5))
    return TrafficDataset(name=name.lower(),
                          class_names=[p.name for p in profiles],
                          flows=flows)


def attack_profile(name: str) -> ClassProfile:
    """Profile of one attack family (USTC-TFC malware or SSDP flood)."""
    attacks = {
        # C2-style beacons: rigid sizes, distinctive periodic cadence.
        "Cridex": ClassProfile(
            name="Cridex", label=100,
            len_modes=[(230, 12, 1.0)], ipd_mu=-3.0, ipd_sigma=0.25,
            len_period=2.0, len_amp=25.0,
            header_template=b"\x4d\x5a\x90\x00\x03\x00", motif=b"\xc2\x1d"),
        "Geodo": ClassProfile(
            name="Geodo", label=101,
            len_modes=[(460, 180, 1.0)], ipd_mu=-4.8, ipd_sigma=1.3,
            len_period=3.0, len_amp=200.0, extra_len_jitter=120.0,
            header_template=b"\x17\x03\x03\x00\x30", motif=b"\x9d\x02"),
        "Htbot": ClassProfile(
            name="Htbot", label=102,
            len_modes=[(520, 200, 1.0)], ipd_mu=-5.5, ipd_sigma=1.1,
            len_period=6.0, len_amp=150.0, extra_len_jitter=150.0,
            header_template=b"\x17\x03\x03\x00\x4a", motif=b"\x68\x74"),
        "Neris": ClassProfile(
            name="Neris", label=103,
            len_modes=[(180, 40, 0.8), (1450, 30, 0.2)], ipd_mu=-6.8, ipd_sigma=1.2,
            len_period=2.0, len_amp=60.0, extra_len_jitter=80.0,
            header_template=b"\x47\x45\x54\x20\x2f", motif=b"\x6e\x72"),
        "Virut": ClassProfile(
            name="Virut", label=104,
            len_modes=[(340, 150, 1.0)], ipd_mu=-5.8, ipd_sigma=1.4,
            len_period=4.0, len_amp=120.0, extra_len_jitter=140.0,
            header_template=b"\x4e\x49\x43\x4b\x20", motif=b"\x76\x69"),
        # SSDP reflection flood: uniform small packets at line-rate cadence.
        "Flood": ClassProfile(
            name="Flood", label=105,
            len_modes=[(310, 5, 1.0)], ipd_mu=-11.0, ipd_sigma=0.1,
            len_period=0.0, len_amp=0.0,
            header_template=b"HTTP/1.1 200 OK\r\nCACHE", motif=b"ssdp:all",
            min_packets=16, max_packets=24),
    }
    try:
        return attacks[name]
    except KeyError:
        raise ValueError(f"unknown attack {name!r}; choose from {ATTACK_NAMES}") from None


def make_attack_flows(name: str, n_flows: int = 60,
                      seed: int | np.random.Generator | None = None) -> list[Flow]:
    """Generate flows for one attack family.

    Like :func:`make_dataset`, the generator draws from a ``spawn_rngs``
    *child* stream, never from the caller's stream directly: passing a
    shared parent generator consumes exactly one spawn draw regardless of
    ``n_flows`` or flow content, so interleaving attack generation with
    benign generation (as scenario workloads do) cannot reshuffle either
    side's packets.
    """
    profile = attack_profile(name)
    rng = spawn_rngs(seed if seed is not None else _name_seed(name), 1)[0]
    flows = []
    t0 = 0.0
    for _ in range(n_flows):
        flows.append(generate_flow(profile, rng, start_ts=t0))
        t0 += float(rng.uniform(0.001, 0.1))
    return flows
