"""Plain-text rendering of experiment results (the benches print these)."""

from __future__ import annotations


def render_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Align a list-of-rows into a monospace table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if 0 <= cell <= 1:
            return f"{cell:.4f}"
        return f"{cell:,.1f}"
    return str(cell)
