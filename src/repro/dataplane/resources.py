"""Resource reporting — the machinery behind the paper's Table 6."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mapping import CompiledModel
from repro.dataplane.pipeline import place_model
from repro.dataplane.registers import FlowStateLayout
from repro.dataplane.target import TargetConfig, TOFINO2


@dataclass
class ResourceReport:
    """Utilization of one model on one target."""

    model_name: str
    stateful_bits_per_flow: int
    sram_fraction: float       # stateless mapping-table SRAM / total SRAM
    tcam_fraction: float       # fuzzy-match TCAM / total TCAM
    bus_fraction: float        # worst-stage action-data bus / bus width
    stages_used: int
    n_tables: int
    phv_fraction: float

    def row(self) -> dict:
        return {
            "model": self.model_name,
            "bits/flow": self.stateful_bits_per_flow,
            "SRAM": f"{self.sram_fraction:.2%}",
            "TCAM": f"{self.tcam_fraction:.2%}",
            "Bus": f"{self.bus_fraction:.2%}",
            "stages": self.stages_used,
        }


def summarize_resources(model: CompiledModel, flow_layout: FlowStateLayout,
                        target: TargetConfig = TOFINO2) -> ResourceReport:
    """Place a compiled model and compute Table-6-style utilization."""
    pipeline = place_model(model, target)
    worst_bus = pipeline.worst_stage_bus
    return ResourceReport(
        model_name=model.name,
        stateful_bits_per_flow=flow_layout.bits_per_flow,
        sram_fraction=model.sram_bits() / target.total_sram_bits,
        tcam_fraction=model.tcam_bits() / target.total_tcam_bits,
        bus_fraction=worst_bus / target.action_bus_bits,
        stages_used=pipeline.n_stages_used,
        n_tables=model.num_tables,
        phv_fraction=pipeline.phv.utilization if pipeline.phv else 0.0,
    )
