"""Regenerate the golden-replay fixtures under ``tests/fixtures/``.

The goldens pin four tiny seeded scenario workloads byte-for-byte — the
SPCAP1 trace files plus SHA-256 digests of the traces, the label columns,
and the reference decision streams of both runtime kinds. The fourth
golden additionally pins the two-level decision cache's
``(exact_hits, approx_hits, misses, evictions)`` counters under the
maximal fast path (``l1+l2`` cache + ``tcam-pruned`` lookups). The
``golden``-marked tests (``tests/test_golden_replay.py``) regenerate each
workload and fail on any drift in the generators *or* the serving stack.

Decision digests are guarded: a refresh ASSERTS that the fast-path replay
(two-level cache + pruned TCAM) reproduces the plain reference digest, and
— unless ``--allow-drift`` is passed — that every digest a previous
manifest already pinned is unchanged. A refresh can therefore add fixtures
or counters, but can never silently ratify a decision change.

Run this only when a change is **meant** to move the goldens (a generator
change, a new reference model), then commit the refreshed fixtures together
with the change::

    PYTHONPATH=src python scripts/refresh_goldens.py [--allow-drift]

The fixture set is defined here, in one place; the test reads the manifest.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.eval.differential import (labels_digest, replay_digests,  # noqa: E402
                                     trace_digest, two_level_replay)
from repro.net import build_scenario, write_trace  # noqa: E402

FIXTURES = Path(__file__).resolve().parent.parent / "tests" / "fixtures"
MANIFEST = FIXTURES / "scenario_goldens.json"

# (scenario family, generation seed, flows_scale, pin cache counters):
# tiny but phase-complete. The counter golden (microburst) pins the exact
# two-level cache counter stream on top of the decision digests.
GOLDEN_SET = [
    ("diurnal", 0, 0.15, False),
    ("attack_flood", 1, 0.15, False),
    ("heavy_hitters", 2, 0.2, False),
    ("microburst", 3, 0.15, True),
]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--allow-drift", action="store_true",
                        help="permit previously pinned digests to change "
                             "(for intentional generator/model changes)")
    args = parser.parse_args(argv)

    previous: dict[str, dict] = {}
    if MANIFEST.exists():
        previous = json.loads(MANIFEST.read_text()).get("goldens", {})

    FIXTURES.mkdir(parents=True, exist_ok=True)
    goldens: dict[str, dict] = {}
    for name, seed, scale, pin_counters in GOLDEN_SET:
        workload = build_scenario(name).generate(seed=seed, flows_scale=scale)
        decisions = replay_digests(workload)
        fast = two_level_replay(workload)
        for kind, ref in decisions.items():
            assert fast[kind]["digest"] == ref["digest"], (
                f"{name}-s{seed}/{kind}: two-level cache + pruned TCAM "
                f"changed the decision stream — refusing to refresh")
        key = f"{name}-s{seed}"
        old = previous.get(key)
        if old is not None and not args.allow_drift:
            drifted = [kind for kind, ref in decisions.items()
                       if old["decisions"].get(kind, ref)["digest"]
                       != ref["digest"]]
            assert not drifted, (
                f"{key}: decision digests drifted for {drifted} — rerun "
                "with --allow-drift only if the change is intentional")
        trace_file = f"scenario_{name}_s{seed}.spcap"
        write_trace(workload.trace, FIXTURES / trace_file)
        goldens[key] = {
            "scenario": name,
            "seed": seed,
            "flows_scale": scale,
            "trace": trace_file,
            "n_packets": workload.n_packets,
            "phases": [s.name for s in workload.phases],
            "trace_sha256": trace_digest(workload.trace),
            "labels_sha256": labels_digest(workload.labels),
            "decisions": decisions,
        }
        if pin_counters:
            goldens[key]["cache_counters"] = {
                kind: fast[kind]["counters"] for kind in fast}
        print(f"{name:>14s} seed={seed} packets={workload.n_packets:5d} "
              f"-> {trace_file}")
    MANIFEST.write_text(json.dumps({
        "_note": [
            "Golden-replay regression fixtures. Regenerate intentionally with",
            "PYTHONPATH=src python scripts/refresh_goldens.py and commit the",
            "result; tests/test_golden_replay.py fails on any unintended",
            "drift in the scenario generators or the serving stack.",
            "Decision digests use repro.eval.differential.default_sources(0);",
            "cache_counters pin the l1+l2 / tcam-pruned fast path.",
        ],
        "goldens": goldens,
    }, indent=2, sort_keys=True) + "\n")
    print(f"manifest -> {MANIFEST}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
