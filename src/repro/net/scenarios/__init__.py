"""Declarative time-varying workload scenarios (see :mod:`.base`).

Importing the package registers the built-in families
(:mod:`repro.net.scenarios.families`): ``diurnal``, ``microburst``,
``attack_flood``, ``heavy_hitters``, ``flow_churn``, ``concept_drift``.
"""

from repro.net.scenarios.base import (
    ARRIVAL_RAMPS,
    PhaseDef,
    PhaseSpan,
    Scenario,
    ScenarioTrace,
    TrafficBand,
    build_scenario,
    lerp_profile,
    register_scenario,
    scenario_names,
    unregister_scenario,
)
import repro.net.scenarios.families  # noqa: F401  (registers the built-ins)

__all__ = [
    "ARRIVAL_RAMPS",
    "PhaseDef",
    "PhaseSpan",
    "Scenario",
    "ScenarioTrace",
    "TrafficBand",
    "build_scenario",
    "lerp_profile",
    "register_scenario",
    "scenario_names",
    "unregister_scenario",
]
