"""Two-level flow-decision cache: exact L1 memo + verified approximate L2.

Per-flow serving spends most of its model invocations on a few elephant flows,
and an elephant's feature window quickly becomes repetitive (constant-rate
flows produce the *same* length/IPD bucket window packet after packet). A
:class:`FlowDecisionCache` memoizes the model's decision per
``(canonical 5-tuple, window index)`` pair, where the *window index* is the
packed byte content of the flow's current feature window — so a cache hit
returns exactly what the model would have computed and decisions stay
bit-identical to an uncached replay (asserted by the serving tests). This is
the cache-optimization lever 5GC^2ache identifies as dominant for per-flow
dataplane serving.

The exact L1 never fires on *near*-repeating windows (a flood of drone flows
whose windows differ by one IPD bucket) or across flows. The L2 of
:class:`TwoLevelDecisionCache` closes that gap without ever changing a
decision:

- the **key** is the quantized feature vector (``feats >> l2_quantize_shift``,
  packed to bytes) — near-identical windows of *different* flows land in the
  same bucket;
- the **entry** carries a *certificate*: the axis-aligned box of the compiled
  model's first-layer cell containing the inserting feature vector (fuzzy
  tables contribute their decision-tree leaf box, exact tables a width-1
  interval). First-layer outputs — and therefore every downstream layer and
  the final argmax — are constant on that cell, so any feature vector inside
  the box provably receives the same decision;
- a probe is served **only** after verify-on-hit: a vectorized
  ``lo <= feats <= hi`` bounds check against the certificate. Quantization
  alone is never trusted — a bucket collision whose box check fails falls
  through to the model (and inserts its own entry).

Exact (L1) and approximate (L2) hits are counted separately
(:class:`CacheStats`); ``exact_hits + approx_hits + misses == lookups`` is a
regression-tested identity. The L2 is read-mostly and shareable: in-process
replicas (``local`` / ``sharded`` topologies) share one store, worker
processes (``parallel``) each fill a local store that the dispatcher merges
and re-publishes at serve boundaries.

Wiring (both dataplane runtimes, behind ``decision_cache``)::

    from repro.dataplane.runtime import WindowedClassifierRuntime
    from repro.serving import TwoLevelDecisionCache

    runtime = WindowedClassifierRuntime(
        compiled, feature_mode="stats",
        decision_cache=TwoLevelDecisionCache(capacity=65536, l2_capacity=4096)
    )

Eviction is LRU at both levels (a hit refreshes the entry/bucket). L1 keys
include the flow's canonical 5-tuple, so register eviction churn in the
runtime never invalidates the cache: a re-arriving evicted elephant hits
again as soon as its window re-forms.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

# Placeholder a batched replay inserts at the cache position where the scalar
# path would have inserted the real decision, before the batch's single model
# invocation has produced it. Reserving the slot in row order keeps the LRU
# recency/eviction sequence — and therefore every subsequent hit/miss count —
# bit-identical to per-packet replay; ``fill`` swaps in the real decision
# afterwards without touching recency. Identity-compared, never equal to a
# real (integer) decision.
PENDING = object()


@dataclass
class CacheStats:
    """Hit/miss/evict counters for one decision cache.

    ``hits`` counts exact (L1) hits; ``approx_hits`` counts verified
    approximate (L2) hits — zero for a plain :class:`FlowDecisionCache`.
    ``evictions`` covers both levels (L1 entries and L2 buckets).
    ``l2_skipped`` counts misses whose L2 insert (and box certificate) was
    skipped because the cache's ``l2_admit`` knob was off — the per-phase
    admission path for workload phases with near-zero repeat probability.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    approx_hits: int = 0
    l2_skipped: int = 0

    @property
    def exact_hits(self) -> int:
        """Alias of ``hits`` — the exact-match (L1) hit count."""
        return self.hits

    @property
    def lookups(self) -> int:
        return self.hits + self.approx_hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from either cache level (0.0 when
        never used)."""
        lookups = self.lookups
        return (self.hits + self.approx_hits) / lookups if lookups else 0.0

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another cache's counters (e.g. across worker replicas)."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.approx_hits += getattr(other, "approx_hits", 0)
        self.l2_skipped += getattr(other, "l2_skipped", 0)


class FlowDecisionCache:
    """Bounded LRU map of ``(canonical 5-tuple, window index) -> decision``.

    ``get`` refreshes recency and counts a hit or miss; ``put`` inserts,
    evicting the least recently used entry at ``capacity``. Values are the
    model's integer class decisions, so a hit can short-circuit the model
    invocation entirely.
    """

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ConfigError("capacity", capacity, allowed=">= 1",
                              reason="cache capacity")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key):
        """The cached decision for ``key`` (or :data:`PENDING`), None on miss."""
        decision = self._entries.get(key)
        if decision is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return decision

    def peek(self, key):
        """Stat-free probe: refresh recency and return the value, None on
        miss. The building block :class:`TwoLevelDecisionCache` drives its
        own hit/miss accounting through (a miss here may still be an
        approximate hit one level down)."""
        decision = self._entries.get(key)
        if decision is None:
            return None
        self._entries.move_to_end(key)
        return decision

    def put(self, key, decision: int) -> None:
        """Insert (or refresh) one decision, evicting LRU at capacity."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = decision
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = decision

    def discard_pending(self, key) -> None:
        """Drop a :data:`PENDING` placeholder, leaving real entries alone.

        Exception-path cleanup: if the model invocation that was meant to
        :meth:`fill` a reserved slot fails, the placeholder must not outlive
        the flush (a later lookup would hand the sentinel out as a
        decision). No stat counting.
        """
        if self._entries.get(key) is PENDING:
            del self._entries[key]

    def fill(self, key, decision: int) -> None:
        """Resolve a :data:`PENDING` placeholder in place, if still cached.

        No stat counting, no recency refresh: the lookup/insert already
        happened (in row order) when the placeholder went in; this only
        supplies the decision value. A placeholder evicted in the meantime
        stays evicted — exactly what the scalar path's entry would have done.
        """
        if key in self._entries:
            self._entries[key] = decision

    def clear(self) -> None:
        """Drop all entries; counters keep accumulating."""
        self._entries.clear()


# L2 entry layout (a mutable list, so a batched replay can resolve a PENDING
# decision in place): [box_lo, box_hi, decision, group_key]. ``group_key`` is
# the L1 key of the reserving row while decision is PENDING (the batched
# replay fans later same-cell rows into that row's model group), else None.
_LO, _HI, _DEC, _GROUP = 0, 1, 2, 3


class QuantizedDecisionStore:
    """The shared L2: quantized-key buckets of certified decision boxes.

    Buckets are LRU-ordered (``capacity`` buckets; a probe or insert
    refreshes its bucket); each bucket holds up to ``bucket_entries``
    certificate entries in insertion order (FIFO within the bucket). The
    store itself is decision-blind bookkeeping — all hit/miss accounting
    lives in the owning :class:`TwoLevelDecisionCache` — which is what makes
    one store safely shareable by many in-process replicas.
    """

    def __init__(self, capacity: int = 4096, quantize_shift: int = 6,
                 bucket_entries: int = 64):
        if capacity < 1:
            raise ConfigError("l2_capacity", capacity, allowed=">= 1")
        if not 0 <= quantize_shift <= 16:
            raise ConfigError("l2_quantize_shift", quantize_shift,
                              allowed="0..16")
        if bucket_entries < 1:
            raise ConfigError("bucket_entries", bucket_entries, allowed=">= 1")
        self.capacity = capacity
        self.quantize_shift = quantize_shift
        self.bucket_entries = bucket_entries
        self._buckets: OrderedDict = OrderedDict()
        # Real (non-PENDING) entries added since the last export — the
        # read-mostly publish stream the parallel dispatcher merges.
        self._export_log: list = []

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets.values())

    @property
    def n_buckets(self) -> int:
        return len(self._buckets)

    def key_for(self, feats: np.ndarray) -> bytes:
        """The quantized bucket key of one int64 feature vector."""
        return (np.asarray(feats, dtype=np.int64)
                >> self.quantize_shift).tobytes()

    def probe(self, feats: np.ndarray):
        """First entry whose certificate box contains ``feats`` (else None).

        Only a verified containment is a hit: the quantized key alone never
        serves a decision. A hit refreshes the bucket's LRU position.
        """
        bucket = self._buckets.get(self.key_for(feats))
        if bucket is None:
            return None
        for entry in bucket:
            if np.all(entry[_LO] <= feats) and np.all(feats <= entry[_HI]):
                self._buckets.move_to_end(self.key_for(feats))
                return entry
        return None

    def insert(self, feats: np.ndarray, box_lo: np.ndarray,
               box_hi: np.ndarray, decision, group_key=None,
               log: bool = True) -> tuple[list, int]:
        """Add one certified entry at ``feats``'s bucket.

        Returns ``(entry, evictions)`` — bucket evictions are charged to the
        inserting replica's stats by the caller. ``log=False`` suppresses the
        export log (used when importing another worker's entries).
        """
        qk = self.key_for(feats)
        evictions = 0
        bucket = self._buckets.get(qk)
        if bucket is None:
            if len(self._buckets) >= self.capacity:
                self._buckets.popitem(last=False)
                evictions += 1
            bucket = self._buckets[qk] = []
        else:
            self._buckets.move_to_end(qk)
        if len(bucket) >= self.bucket_entries:
            bucket.pop(0)
            evictions += 1
        entry = [np.asarray(box_lo, dtype=np.int64),
                 np.asarray(box_hi, dtype=np.int64), decision, group_key]
        bucket.append(entry)
        if log and decision is not PENDING:
            self._export_log.append((qk, entry[_LO], entry[_HI], decision))
        return entry, evictions

    def resolve(self, entry: list, decision: int, qk: bytes) -> None:
        """Fill a PENDING entry's decision in place and publish it."""
        entry[_DEC] = decision
        entry[_GROUP] = None
        self._export_log.append((qk, entry[_LO], entry[_HI], decision))

    def remove(self, entry: list, qk: bytes) -> None:
        """Drop one entry (exception-path cleanup of a PENDING reservation)."""
        bucket = self._buckets.get(qk)
        if bucket is not None:
            try:
                bucket.remove(entry)
            except ValueError:
                pass
            if not bucket:
                del self._buckets[qk]

    def export_delta(self) -> list:
        """Drain the entries published since the last export.

        The parallel dispatcher calls this worker-side after each shard
        replay; the drained tuples travel to the parent as plain
        ``(bucket_key, box_lo, box_hi, decision)`` rows.
        """
        out, self._export_log = self._export_log, []
        return out

    def import_entries(self, entries) -> None:
        """Merge published entries from another store (read-mostly seed).

        Deduplicates by (bucket, box): an entry this store already holds is
        skipped, so repeated publishes are idempotent. Imports are never
        re-exported (no echo) and never counted as this replica's inserts.
        """
        for qk, lo, hi, decision in entries or ():
            bucket = self._buckets.get(qk)
            if bucket is not None:
                lo_b, hi_b = lo.tobytes(), hi.tobytes()
                if any(e[_LO].tobytes() == lo_b and e[_HI].tobytes() == hi_b
                       for e in bucket):
                    continue
                if len(bucket) >= self.bucket_entries:
                    bucket.pop(0)
            else:
                if len(self._buckets) >= self.capacity:
                    self._buckets.popitem(last=False)
                bucket = self._buckets[qk] = []
            bucket.append([lo, hi, decision, None])

    def clear(self) -> None:
        self._buckets.clear()
        self._export_log.clear()


class TwoLevelDecisionCache:
    """Exact per-flow L1 + shared verified-approximate L2, one stat stream.

    The runtime drives the levels explicitly (``two_level`` marks the
    protocol): :meth:`exact_get` probes L1; on miss :meth:`approx_get`
    probes the L2 with the row's feature vector; only when both miss does
    the model run, after which :meth:`insert` (scalar) or
    :meth:`reserve` + :meth:`fill` (batched) populate both levels. An L2 hit
    is *promoted* into L1, so a flow that keeps repeating the window turns
    its approximate hits into exact ones.

    Every lookup counts exactly one of ``hits`` / ``approx_hits`` /
    ``misses`` — the ``exact_hits + approx_hits + misses == lookups``
    identity the regression tests pin.

    ``l2`` may be a shared :class:`QuantizedDecisionStore` (in-process
    replicas of one engine share a store; each keeps its own stats).

    ``l2_admit`` is the per-phase admission knob: when False the runtime
    keeps probing both levels (hits stay hits) but skips the L2 insert — and
    with it the box-certificate computation — on every miss, populating only
    the exact L1 via :meth:`insert_l1_only` / :meth:`skip_l2_insert`.
    Decisions are unaffected either way (cache contents never change a
    decision), so a phase can flip the knob freely; skipped inserts are
    counted in ``stats.l2_skipped``.
    """

    two_level = True

    def __init__(self, capacity: int = 65536, l2_capacity: int = 4096,
                 l2_quantize_shift: int = 6, l2_bucket_entries: int = 64,
                 l2: QuantizedDecisionStore | None = None):
        self.l1 = FlowDecisionCache(capacity)
        self.l2 = l2 if l2 is not None else QuantizedDecisionStore(
            l2_capacity, l2_quantize_shift, l2_bucket_entries)
        self.stats = self.l1.stats    # one stream: L1 evictions count here too
        self.l2_admit = True
        self._pending: dict = {}      # group L1 key -> (L2 entry, bucket key)

    def __len__(self) -> int:
        return len(self.l1)

    @property
    def capacity(self) -> int:
        return self.l1.capacity

    # -- probes ---------------------------------------------------------------

    def exact_get(self, key):
        """L1 probe: decision / :data:`PENDING` on hit (counted), else None.

        A None here is *not* yet a miss — the caller falls through to
        :meth:`approx_get` and only a double miss counts.
        """
        got = self.l1.peek(key)
        if got is not None:
            self.stats.hits += 1
        return got

    def approx_get(self, feats: np.ndarray):
        """Verified L2 probe: the matching entry (counted), else None."""
        entry = self.l2.probe(feats)
        if entry is not None:
            self.stats.approx_hits += 1
        return entry

    def count_miss(self) -> None:
        """Record that both levels missed (the model is about to run)."""
        self.stats.misses += 1

    # -- population -----------------------------------------------------------

    def promote(self, key, decision) -> None:
        """Copy an L2-served decision (or a PENDING reservation) into L1."""
        self.l1.put(key, decision)

    def insert(self, key, feats: np.ndarray, box_lo: np.ndarray,
               box_hi: np.ndarray, decision: int) -> None:
        """Populate both levels after a model invocation (scalar path)."""
        self.l1.put(key, decision)
        _, evicted = self.l2.insert(feats, box_lo, box_hi, decision)
        self.stats.evictions += evicted

    def insert_l1_only(self, key, decision: int) -> None:
        """Scalar-path miss population with the L2 gate closed.

        Keeps the L1 op sequence identical to :meth:`insert` (same ``put``,
        same recency churn) while skipping the L2 entry — the caller also
        skipped the box-certificate computation, which is the point.
        """
        self.l1.put(key, decision)
        self.stats.l2_skipped += 1

    def skip_l2_insert(self) -> None:
        """Batched-path miss accounting with the L2 gate closed.

        The batched protocol already reserved the L1 slot (PENDING promote
        in pass 1) and will :meth:`fill` it; only the L2 reservation is
        skipped, so :meth:`fill` / :meth:`discard_pending` find no pending
        entry — both tolerate that.
        """
        self.stats.l2_skipped += 1

    def reserve_l2(self, key, feats: np.ndarray, box_lo: np.ndarray,
                   box_hi: np.ndarray) -> None:
        """Reserve a PENDING L2 entry before a batched model invocation.

        L2-only on purpose: the batched protocol already reserved the L1
        slot (via :meth:`promote` with PENDING) at the row's pass-1
        position — reserving it again here would refresh its LRU recency
        and diverge from the scalar op sequence. The L2 entry carries
        ``key`` as its group tag, so later same-cell rows of the same flush
        can join this row's model group — exactly the rows that would have
        hit the real entry under scalar replay.
        """
        entry, evicted = self.l2.insert(feats, box_lo, box_hi, PENDING,
                                        group_key=key)
        self.stats.evictions += evicted
        self._pending[key] = (entry, self.l2.key_for(feats))

    def fill(self, key, decision: int) -> None:
        """Resolve PENDING reservations under ``key`` at both levels."""
        self.l1.fill(key, decision)
        pending = self._pending.pop(key, None)
        if pending is not None:
            entry, qk = pending
            self.l2.resolve(entry, decision, qk)

    def discard_pending(self, key) -> None:
        """Exception-path cleanup: drop PENDING reservations under ``key``."""
        self.l1.discard_pending(key)
        pending = self._pending.pop(key, None)
        if pending is not None:
            entry, qk = pending
            self.l2.remove(entry, qk)

    # -- sharing --------------------------------------------------------------

    def export_l2(self) -> list:
        """Publish this replica's new L2 entries (see ``export_delta``)."""
        return self.l2.export_delta()

    def import_l2(self, entries) -> None:
        """Seed the L2 with entries another replica published."""
        self.l2.import_entries(entries)

    def clear(self) -> None:
        """Drop all entries at both levels; counters keep accumulating."""
        self.l1.clear()
        self.l2.clear()
        self._pending.clear()
