"""Dev helper: check stats-MLP separability per dataset.

For each synthetic dataset this trains a small float MLP on the statistical
features, compiles it to mapping tables, and replays the test flows through
a **batched** local `PegasusEngine` — so the number reported is the
packet-level accuracy the software dataplane actually serves, not just the
offline window accuracy. Expected runtime: ~1 minute for all three
datasets (documented in README.md).

Run:  PYTHONPATH=src python scripts/calibrate.py
"""
import numpy as np

from repro import EngineConfig, PegasusEngine, nn
from repro.core import PegasusCompiler, CompilerConfig
from repro.net import make_dataset
from repro.net.features import dataset_views


def check(name, seed=0):
    ds = make_dataset(name, flows_per_class=120, seed=seed)
    tr, va, te = ds.split(rng=0)
    vtr, vte = dataset_views(tr), dataset_views(te)
    x = vtr["stats"].astype(np.float64)
    model = nn.Sequential(nn.BatchNorm1d(16), nn.Linear(16, 48, rng=0),
                          nn.ReLU(), nn.Linear(48, ds.n_classes, rng=1))
    nn.fit(model, x, vtr["y"], nn.CrossEntropyLoss(), nn.Adam(model.parameters(), lr=0.01),
           epochs=40, batch_size=64, rng=0)
    pred = nn.predict_classes(model, vte["stats"].astype(np.float64))
    float_acc = (pred == vte["y"]).mean()

    # Compile to mapping tables and replay the test trace through the
    # serving engine: the per-packet accuracy the dataplane actually serves.
    model.eval_mode()
    compiled = PegasusCompiler(CompilerConfig(refine=False)).compile_sequential(
        model, vtr["stats"].astype(np.int64)).compiled
    engine = PegasusEngine.from_compiled(
        compiled, EngineConfig(feature_mode="stats", batch_size=256))
    report = engine.serve(te)
    return float_acc, report.accuracy or 0.0, report.pps


if __name__ == "__main__":
    print(f"{'dataset':>10s} {'float_acc':>9s} {'replay_acc':>10s} {'pps':>12s}")
    for name in ("peerrush", "ciciot", "iscxvpn"):
        float_acc, replay_acc, pps = check(name)
        print(f"{name:>10s} {float_acc:9.3f} {replay_acc:10.3f} {pps:12.0f}")
