"""Tests for range-to-ternary conversion and Consecutive Range Coding."""

import pytest
from hypothesis import given, strategies as st

from repro.core.crc import (
    TernaryMatch,
    range_to_prefixes,
    consecutive_range_coding,
    lookup_prioritized,
    naive_partition_entries,
)


class TestTernaryMatch:
    def test_exact(self):
        m = TernaryMatch(value=5, mask=0xFF, width=8)
        assert m.matches(5)
        assert not m.matches(4)

    def test_wildcard(self):
        m = TernaryMatch(value=0, mask=0, width=8)
        assert all(m.matches(v) for v in range(256))

    def test_str(self):
        m = TernaryMatch(value=0b100, mask=0b110, width=3)
        assert str(m) == "10*"


class TestRangeToPrefixes:
    def test_full_range_is_one_entry(self):
        prefixes = range_to_prefixes(0, 255, 8)
        assert len(prefixes) == 1
        assert prefixes[0].mask == 0

    def test_single_value(self):
        prefixes = range_to_prefixes(7, 7, 8)
        assert len(prefixes) == 1
        assert prefixes[0].matches(7)
        assert not prefixes[0].matches(6)

    def test_invalid(self):
        with pytest.raises(ValueError):
            range_to_prefixes(5, 3, 8)
        with pytest.raises(ValueError):
            range_to_prefixes(0, 256, 8)

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_cover_is_exact(self, a, b):
        lo, hi = min(a, b), max(a, b)
        prefixes = range_to_prefixes(lo, hi, 8)
        for v in range(256):
            covered = any(p.matches(v) for p in prefixes)
            assert covered == (lo <= v <= hi)

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_prefixes_disjoint(self, a, b):
        lo, hi = min(a, b), max(a, b)
        prefixes = range_to_prefixes(lo, hi, 8)
        for v in range(lo, hi + 1):
            assert sum(p.matches(v) for p in prefixes) == 1

    @given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
    def test_count_bounded(self, a, b):
        lo, hi = min(a, b), max(a, b)
        assert len(range_to_prefixes(lo, hi, 16)) <= 2 * 16 - 2 or lo == 0


class TestConsecutiveRangeCoding:
    def test_single_boundary(self):
        entries = consecutive_range_coding([9], 8)
        assert lookup_prioritized(entries, 0) == 0
        assert lookup_prioritized(entries, 9) == 0
        assert lookup_prioritized(entries, 10) == 1
        assert lookup_prioritized(entries, 255) == 1

    @given(st.sets(st.integers(0, 254), min_size=1, max_size=8))
    def test_partition_semantics(self, bounds):
        boundaries = sorted(bounds)
        entries = consecutive_range_coding(boundaries, 8)
        for key in list(range(0, 256, 7)) + boundaries + [b + 1 for b in boundaries]:
            if key > 255:
                continue
            want = next((i for i, b in enumerate(boundaries) if key <= b), len(boundaries))
            assert lookup_prioritized(entries, key) == want

    def test_unsorted_raises(self):
        with pytest.raises(ValueError):
            consecutive_range_coding([5, 5], 8)
        with pytest.raises(ValueError):
            consecutive_range_coding([9, 3], 8)

    def test_out_of_space_raises(self):
        with pytest.raises(ValueError):
            consecutive_range_coding([300], 8)

    @given(st.sets(st.integers(0, 254), min_size=2, max_size=10))
    def test_crc_count_bounded(self, bounds):
        boundaries = sorted(bounds)
        crc_count = len(consecutive_range_coding(boundaries, 8))
        # Each [0, b] prefix cover needs at most `width` entries.
        assert crc_count <= len(boundaries) * 8 + 1

    def test_crc_beats_naive_on_awkward_ranges(self):
        # Learned thresholds rarely align to powers of two; independent
        # expansion of each region then pays on both sides of every boundary.
        boundaries = [100, 200]
        assert len(consecutive_range_coding(boundaries, 8)) < \
            naive_partition_entries(boundaries, 8)


def _brute_force_covers(prefixes, width):
    """The exact key set a prefix list matches, by enumeration."""
    return {v for v in range(1 << width)
            if any(p.matches(v) for p in prefixes)}


class TestDomainBoundaries:
    """Brute-force audits of the conversion at the edges of the key domain:
    the empty range, the full domain, single-point ranges, and boundaries
    touching either end of the space."""

    @given(st.integers(1, 8))
    def test_empty_range_is_rejected_not_miscovered(self, width):
        # There is no prefix encoding of an empty range; the contract is a
        # ValueError, never a bogus cover.
        with pytest.raises(ValueError):
            range_to_prefixes(1, 0, width)
        with pytest.raises(ValueError):
            range_to_prefixes(-1, 0, width)

    @given(st.integers(1, 10))
    def test_full_domain_is_single_wildcard(self, width):
        prefixes = range_to_prefixes(0, (1 << width) - 1, width)
        assert len(prefixes) == 1
        assert prefixes[0].mask == 0

    @given(st.integers(1, 8), st.data())
    def test_single_point_range_matches_exactly_one_key(self, width, data):
        point = data.draw(st.integers(0, (1 << width) - 1))
        prefixes = range_to_prefixes(point, point, width)
        assert _brute_force_covers(prefixes, width) == {point}
        assert len(prefixes) == 1
        assert prefixes[0].mask == (1 << width) - 1

    @given(st.integers(1, 8), st.data())
    def test_cover_is_exact_at_domain_edges(self, width, data):
        space_max = (1 << width) - 1
        # Bias sampling to the edges, where off-by-ones live.
        lo = data.draw(st.sampled_from(
            [0, 1, space_max - 1, space_max]
            + list(range(min(8, space_max + 1)))))
        hi = data.draw(st.integers(lo, space_max))
        covered = _brute_force_covers(range_to_prefixes(lo, hi, width), width)
        assert covered == set(range(lo, hi + 1))

    @given(st.integers(1, 8))
    def test_boundary_at_domain_max_keeps_partition_exact(self, width):
        # A boundary at 2^w - 1 makes the final region empty: every key must
        # still resolve to region 0 and the catch-all stays unreachable.
        space_max = (1 << width) - 1
        entries = consecutive_range_coding([space_max], width)
        for key in range(space_max + 1):
            assert lookup_prioritized(entries, key) == 0

    @given(st.integers(2, 8), st.data())
    def test_partition_brute_force_at_edges(self, width, data):
        space_max = (1 << width) - 1
        pool = sorted({0, 1, space_max - 1, space_max}
                      | set(data.draw(st.sets(st.integers(0, space_max),
                                              max_size=3))))
        entries = consecutive_range_coding(pool, width)
        for key in range(space_max + 1):
            want = next((i for i, b in enumerate(pool) if key <= b), len(pool))
            assert lookup_prioritized(entries, key) == want

    def test_boundary_zero_single_point_region(self):
        # boundaries=[0]: region 0 is the single point {0}.
        entries = consecutive_range_coding([0], 8)
        assert lookup_prioritized(entries, 0) == 0
        assert all(lookup_prioritized(entries, k) == 1 for k in (1, 128, 255))
