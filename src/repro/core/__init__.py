"""Pegasus core: primitives, fuzzy matching, fusion, quantization, compiler.

The paper's primary contribution. Layering:

1. :mod:`repro.core.primitives` — the Partition / Map / SumReduce IR.
2. :mod:`repro.core.operators` — lowering trained NN layers to the IR.
3. :mod:`repro.core.fusion` — Basic and Advanced Primitive Fusion.
4. :mod:`repro.core.fuzzy` — the clustering-tree fuzzy matcher.
5. :mod:`repro.core.crc` — range-to-ternary (Consecutive Range Coding).
6. :mod:`repro.core.mapping` — table materialization at fixed point.
7. :mod:`repro.core.finetune` — backprop / least-squares table refinement.
8. :mod:`repro.core.compiler` — the end-to-end driver.
"""

from repro.core.primitives import (
    Affine,
    ElementwiseAffine,
    ElementwiseFunc,
    General,
    FuncSpec,
    MapStep,
    SumReduceStep,
    PrimitiveProgram,
    compose,
    even_partition,
)
from repro.core.fuzzy import FuzzyTree, FuzzyNode
from repro.core.crc import (
    TernaryMatch,
    PrioritizedEntry,
    range_to_prefixes,
    consecutive_range_coding,
    lookup_prioritized,
)
from repro.core.fusion import fuse_basic, remove_nonlinear, additive_program
from repro.core.operators import lower_sequential
from repro.core.mapping import (
    MaterializeConfig,
    SegmentTable,
    LookupLayer,
    CompiledModel,
    materialize,
)
from repro.core.finetune import refine_values_least_squares, SoftTreeFineTuner
from repro.core.compiler import PegasusCompiler, CompilerConfig, CompilationResult
from repro.core import syntax

__all__ = [
    "Affine",
    "ElementwiseAffine",
    "ElementwiseFunc",
    "General",
    "FuncSpec",
    "MapStep",
    "SumReduceStep",
    "PrimitiveProgram",
    "compose",
    "even_partition",
    "FuzzyTree",
    "FuzzyNode",
    "TernaryMatch",
    "PrioritizedEntry",
    "range_to_prefixes",
    "consecutive_range_coding",
    "lookup_prioritized",
    "fuse_basic",
    "remove_nonlinear",
    "additive_program",
    "lower_sequential",
    "MaterializeConfig",
    "SegmentTable",
    "LookupLayer",
    "CompiledModel",
    "materialize",
    "refine_values_least_squares",
    "SoftTreeFineTuner",
    "PegasusCompiler",
    "CompilerConfig",
    "CompilationResult",
    "syntax",
]
