"""Mapping-table materialization: primitive programs -> integer lookup layers.

This is where Pegasus's design ❸ lands in code: mapping tables store results
precomputed **with full-precision weights**, while everything that flows
between tables is a **fixed-point integer**. Each MapStep segment becomes a
:class:`SegmentTable` — either *exact* (a direct-indexed SRAM table, when the
segment is a single unit of at most 8 bits, 2^8 entries) or *fuzzy* (a
clustering tree realized as TCAM range rules whose leaf points at a
precomputed result vector).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CompilationError, ConfigError, ShapeError
from repro.core.fuzzy import FuzzyTree
from repro.core.primitives import MapStep, PrimitiveProgram, SumReduceStep
from repro.utils.fixed_point import QFormat, choose_qformat


# Lookup execution backends of a compiled model. "index" answers every table
# by exact fancy indexing (exact tables) / tree walk (fuzzy tables); "tcam"
# answers fuzzy tables through the vectorized prioritized-TCAM emulation in
# :mod:`repro.dataplane.tcam` — bit-identical by construction, but executing
# the very (value, mask, priority) entries the hardware would hold.
# "tcam-pruned" is the same TCAM emulation with the flat wide-table encoding
# forced and its candidate-pruned match kernel enabled: each key compares
# against the rows of its elementary interval segment instead of the whole
# table — still first-match-identical. Exact tables are direct-indexed SRAM
# on the switch too, so every backend indexes them.
LOOKUP_BACKENDS = ("index", "tcam", "tcam-pruned")


def _check_backend(lookup_backend: str) -> None:
    if lookup_backend not in LOOKUP_BACKENDS:
        raise ConfigError("lookup_backend", lookup_backend,
                          allowed=LOOKUP_BACKENDS)


@dataclass
class MaterializeConfig:
    """Knobs for table construction."""

    fuzzy_leaves: int = 16       # clusters per fuzzy segment table
    act_bits: int = 8            # fixed-point width of activations (paper: 2^8-entry queries)
    exact_max_bits: int = 8      # exact tables allowed up to this key width
    calibration_margin: float = 1.05  # headroom when choosing QFormats


@dataclass
class SegmentTable:
    """One Map segment realized as a dataplane table."""

    segment: tuple[int, int]
    kind: str                    # "exact" | "fuzzy"
    values_int: np.ndarray       # (n_entries, out_dim) stored results
    out_format: QFormat
    in_bits: int                 # key width per input unit
    in_signed: bool = False      # signed keys use excess-K TCAM encoding
    tree: FuzzyTree | None = None
    exact_lo: int = 0            # exact tables index by (x - exact_lo)
    # Lazily compiled TCAM forms of a fuzzy table (repro.dataplane.tcam),
    # cached per encoding choice ("auto" | "pruned") so serving pays
    # compilation once per table, not per batch.
    _tcam: dict = field(default_factory=dict, init=False, repr=False,
                        compare=False)
    # Lazily built per-leaf integer boxes (fuzzy tables): the cell-box
    # certificates the two-level decision cache verifies hits against.
    _leaf_boxes_int: tuple | None = field(default=None, init=False,
                                          repr=False, compare=False)

    @property
    def out_dim(self) -> int:
        return self.values_int.shape[1]

    @property
    def n_entries(self) -> int:
        return self.values_int.shape[0]

    def lookup(self, x_seg: np.ndarray,
               lookup_backend: str = "index") -> np.ndarray:
        """Table lookup for a batch of integer segment inputs (N, d)."""
        _check_backend(lookup_backend)
        if self.kind == "exact":
            # Direct-indexed SRAM on the hardware under every backend.
            idx = np.clip(x_seg[:, 0] - self.exact_lo, 0, self.n_entries - 1)
            return self.values_int[idx.astype(np.int64)]
        assert self.tree is not None
        if lookup_backend == "tcam":
            return self.values_int[self.tcam_indices(x_seg)]
        if lookup_backend == "tcam-pruned":
            return self.values_int[self.tcam_indices(x_seg, pruned=True)]
        return self.values_int[self.tree.predict_index(x_seg)]

    def tcam_segment(self, pruned: bool = False):
        """The cached prioritized-TCAM form of this (fuzzy) table.

        ``pruned=True`` compiles (and caches) the pruned-kernel variant —
        flat encoding forced where affordable so the candidate pre-index
        has one wide scan to prune.
        """
        key = "pruned" if pruned else "auto"
        if key not in self._tcam:
            # Imported lazily: core stays importable without the dataplane.
            from repro.dataplane.tcam import compile_segment_table
            self._tcam[key] = compile_segment_table(self, encoding=key)
        return self._tcam[key]

    def tcam_indices(self, x_seg: np.ndarray, pruned: bool = False) -> np.ndarray:
        """Fuzzy indices via masked-compare TCAM emulation (bit-identical
        to :meth:`fuzzy_indices` for the integer keys the dataplane sees)."""
        return self.tcam_segment(pruned=pruned).lookup_indices(x_seg,
                                                               pruned=pruned)

    def fuzzy_indices(self, x_seg: np.ndarray) -> np.ndarray:
        """The raw fuzzy index (used when per-flow state stores indexes)."""
        if self.kind != "fuzzy":
            raise CompilationError("only fuzzy tables have fuzzy indices")
        return self.tree.predict_index(x_seg)

    # -- cell-box certificates -----------------------------------------------

    def leaf_box_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-leaf integer boxes of a fuzzy table, as (lo, hi) arrays.

        Shape (n_leaves, d), inclusive integer bounds in the raw key
        domain: leaf i's box is exactly the integer region the clustering
        tree routes to fuzzy index i, so the table's output is constant on
        it — the certificate :func:`decision_cell_box` hands the two-level
        decision cache.
        """
        if self.kind != "fuzzy":
            raise CompilationError("only fuzzy tables have leaf boxes")
        if self._leaf_boxes_int is None:
            key_lo = -(1 << (self.in_bits - 1)) if self.in_signed else 0
            key_hi = key_lo + (1 << self.in_bits) - 1
            boxes = self.tree.leaf_boxes(lo=key_lo, hi=key_hi)
            lo = np.asarray([[int(np.ceil(b_lo)) for (b_lo, _) in box]
                             for box in boxes], dtype=np.int64)
            hi = np.asarray([[int(np.floor(b_hi)) for (_, b_hi) in box]
                             for box in boxes], dtype=np.int64)
            self._leaf_boxes_int = (lo, hi)
        return self._leaf_boxes_int

    def cell_box(self, x_seg: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Inclusive (lo, hi) box per row on which this table is constant.

        Fuzzy tables return the leaf box containing each row; exact tables
        return the width-1 point box ``[x, x]`` (their output varies with
        every key, and clipping makes wider boxes unsound at the domain
        edges).
        """
        x_seg = np.asarray(x_seg, dtype=np.int64)
        if self.kind == "exact":
            return x_seg.copy(), x_seg.copy()
        lo, hi = self.leaf_box_arrays()
        idx = self.tree.predict_index(x_seg)
        return lo[idx], hi[idx]

    # -- resource accounting -------------------------------------------------

    def sram_bits(self) -> int:
        """Action-data storage: every entry's result vector."""
        return self.n_entries * self.out_dim * self.out_format.total_bits

    def tcam_bits(self) -> int:
        """Ternary match storage (value+mask per entry) for fuzzy tables."""
        if self.kind != "fuzzy":
            return 0
        d = self.segment[1] - self.segment[0]
        key_width = d * self.in_bits
        entries = self.tree.tcam_entries(key_bits=self.in_bits, signed=self.in_signed)
        return entries * 2 * key_width

    def bus_bits(self) -> int:
        """Action-data bus transfer per lookup."""
        return self.out_dim * self.out_format.total_bits


@dataclass
class LookupLayer:
    """One fused Map(+SumReduce) round: parallel segment lookups, then sum/concat."""

    tables: list[SegmentTable]
    sum_reduce: bool
    out_format: QFormat

    @property
    def out_dim(self) -> int:
        if self.sum_reduce:
            return self.tables[0].out_dim
        return sum(t.out_dim for t in self.tables)

    @property
    def in_dim(self) -> int:
        return max(t.segment[1] for t in self.tables)

    def forward_int(self, x_int: np.ndarray,
                    lookup_backend: str = "index") -> np.ndarray:
        """Integer-domain forward pass (bit-exact with the switch pipeline)."""
        outs = [t.lookup(x_int[:, t.segment[0]:t.segment[1]],
                         lookup_backend=lookup_backend) for t in self.tables]
        if self.sum_reduce:
            acc = np.zeros_like(outs[0], dtype=np.int64)
            for o in outs:
                acc += o
            # The pipeline's accumulator saturates at the activation width.
            return np.clip(acc, self.out_format.int_min, self.out_format.int_max)
        return np.concatenate(outs, axis=1)

    def sram_bits(self) -> int:
        return sum(t.sram_bits() for t in self.tables)

    def tcam_bits(self) -> int:
        return sum(t.tcam_bits() for t in self.tables)

    def bus_bits(self) -> int:
        return sum(t.bus_bits() for t in self.tables)

    @property
    def n_lookups(self) -> int:
        return len(self.tables)


@dataclass
class CompiledModel:
    """A Pegasus model compiled to lookup layers, executable on integers."""

    input_dim: int
    layers: list[LookupLayer] = field(default_factory=list)
    input_bits: int = 8
    name: str = "pegasus"

    @property
    def out_format(self) -> QFormat:
        return self.layers[-1].out_format

    def forward_int(self, x_int: np.ndarray,
                    lookup_backend: str = "index") -> np.ndarray:
        """Integer forward pass over a batch of any size.

        Every op is a table gather or a saturating integer add, so results
        are *batch-size invariant*: evaluating N rows at once is bit-equal
        to evaluating them one at a time — the property that lets the
        batched runtimes replace per-packet calls with one call per batch.
        The empty batch (0, input_dim) is explicitly supported.

        ``lookup_backend`` selects how fuzzy tables are answered: ``"index"``
        walks the clustering tree; ``"tcam"`` runs the vectorized
        prioritized-TCAM emulation (:mod:`repro.dataplane.tcam`) over the
        packed (value, mask, priority) entries the switch would hold. The
        two are bit-identical for every integer input (asserted by
        ``tests/test_dataplane_tcam.py``).
        """
        _check_backend(lookup_backend)
        x = np.asarray(x_int, dtype=np.int64)
        if x.ndim == 1:
            x = x[None, :]
        if x.ndim != 2:
            raise ShapeError(f"expected a (N, {self.input_dim}) batch, got shape {x.shape}")
        if x.shape[1] != self.input_dim:
            raise ShapeError(f"expected input dim {self.input_dim}, got {x.shape[1]}")
        if x.shape[0] == 0:
            out_dim = self.layers[-1].out_dim if self.layers else self.input_dim
            return np.zeros((0, out_dim), dtype=np.int64)
        for layer in self.layers:
            x = layer.forward_int(x, lookup_backend=lookup_backend)
        return x

    def predict_scores(self, x_int: np.ndarray,
                       lookup_backend: str = "index") -> np.ndarray:
        """Dequantized final-layer scores."""
        return self.out_format.dequantize(
            self.forward_int(x_int, lookup_backend=lookup_backend))

    def predict(self, x_int: np.ndarray,
                lookup_backend: str = "index") -> np.ndarray:
        """Argmax class decision, as the switch's final compare tree does."""
        return np.argmax(self.forward_int(x_int, lookup_backend=lookup_backend),
                         axis=1)

    @property
    def num_lookup_rounds(self) -> int:
        return len(self.layers)

    @property
    def num_tables(self) -> int:
        return sum(layer.n_lookups for layer in self.layers)

    def sram_bits(self) -> int:
        return sum(layer.sram_bits() for layer in self.layers)

    def tcam_bits(self) -> int:
        return sum(layer.tcam_bits() for layer in self.layers)

    def bus_bits(self) -> int:
        return max((layer.bus_bits() for layer in self.layers), default=0)


def decision_cell_box(model: CompiledModel,
                      x_int: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-row axis-aligned boxes on which the model's decision is constant.

    For a batch ``(N, input_dim)`` of integer inputs, returns inclusive
    ``(lo, hi)`` int64 arrays of the same shape such that every integer
    point inside row i's box provably receives the same final decision as
    ``x_int[i]``: the box is the intersection of the first layer's
    per-table constancy regions (fuzzy leaf box / exact point box), the
    first-layer output is therefore identical across the box, and every
    later layer — and the final argmax — is a function of that output
    alone. This is the verify-on-hit certificate of the two-level decision
    cache: an approximate (quantized-key) hit is served only when the probe
    vector lies inside the cached box.

    Dimensions no first-layer table reads (there are none in practice) stay
    pinned to the point, keeping the certificate sound by construction.
    """
    x = np.asarray(x_int, dtype=np.int64)
    if x.ndim == 1:
        x = x[None, :]
    if x.ndim != 2 or x.shape[1] != model.input_dim:
        raise ShapeError(
            f"expected a (N, {model.input_dim}) batch, got shape {x.shape}")
    lo = x.copy()
    hi = x.copy()
    if model.layers and len(x):
        for table in model.layers[0].tables:
            start, stop = table.segment
            t_lo, t_hi = table.cell_box(x[:, start:stop])
            lo[:, start:stop] = t_lo
            hi[:, start:stop] = t_hi
    return lo, hi


# Chunk the (rows x leaves x out_dim) candidate-bound tensors so interval
# certification of a large miss batch stays within a few MB of scratch.
_BOUND_CELLS = 1 << 22


def _table_output_bounds(table: SegmentTable, lo: np.ndarray,
                         hi: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sound per-row output bounds of one table over input boxes [lo, hi].

    Returns ``(out_lo, out_hi, ok)``: for every integer key inside row i's
    (inclusive) box, the table's output lies in ``[out_lo[i], out_hi[i]]``
    elementwise. ``ok[i]`` is False when no table entry intersects the box
    (an empty candidate set has no meaningful bounds) — callers must treat
    such rows as uncertifiable rather than trust the sentinel values.
    """
    n = len(lo)
    vals = table.values_int
    if table.kind == "exact":
        # Direct-indexed SRAM: keys clip into [0, n_entries): a box maps to
        # a contiguous index range, bounded by a min/max over the slice.
        i0 = np.clip(lo[:, 0] - table.exact_lo, 0, table.n_entries - 1)
        i1 = np.clip(hi[:, 0] - table.exact_lo, 0, table.n_entries - 1)
        pairs, inv = np.unique(np.stack([i0, i1], axis=1), axis=0,
                               return_inverse=True)
        ulo = np.empty((len(pairs), table.out_dim), dtype=np.int64)
        uhi = np.empty_like(ulo)
        for k, (a, b) in enumerate(pairs):
            seg = vals[int(a):int(b) + 1]
            ulo[k] = seg.min(axis=0)
            uhi[k] = seg.max(axis=0)
        return ulo[inv], uhi[inv], np.ones(n, dtype=bool)
    leaf_lo, leaf_hi = table.leaf_box_arrays()
    out_lo = np.empty((n, table.out_dim), dtype=np.int64)
    out_hi = np.empty_like(out_lo)
    ok = np.empty(n, dtype=bool)
    chunk = max(1, _BOUND_CELLS // max(1, len(leaf_lo) * table.out_dim))
    for s in range(0, n, chunk):
        l_, h_ = lo[s:s + chunk], hi[s:s + chunk]
        inter = ((leaf_lo[None, :, :] <= h_[:, None, :])
                 & (leaf_hi[None, :, :] >= l_[:, None, :])).all(axis=2)
        ok[s:s + chunk] = inter.any(axis=1)
        cand = inter[:, :, None]
        out_lo[s:s + chunk] = np.where(cand, vals[None], _INT64_MAX).min(axis=1)
        out_hi[s:s + chunk] = np.where(cand, vals[None], _INT64_MIN).max(axis=1)
    return out_lo, out_hi, ok


_INT64_MAX = np.iinfo(np.int64).max
_INT64_MIN = np.iinfo(np.int64).min


def decision_box_certified(model: CompiledModel, x_int: np.ndarray,
                           box_lo: np.ndarray,
                           box_hi: np.ndarray) -> np.ndarray:
    """Per-row bool: the decision is provably constant on ``[box_lo, box_hi]``.

    Interval abstraction over the lookup pipeline: each layer's output is
    bounded by the elementwise min/max over every table entry whose key
    region intersects the incoming box (fuzzy leaf boxes / exact index
    ranges); SumReduce adds bounds and saturates monotonically. Row i is
    certified when the final lower bound of ``x_int[i]``'s own class
    strictly exceeds every other class's upper bound — then no point in the
    box can flip the argmax, regardless of tie-breaking order. Bounds only
    ever over-approximate the reachable outputs, so a True verdict is sound
    by construction; False merely means "could not prove it".
    """
    x = np.asarray(x_int, dtype=np.int64)
    if x.ndim == 1:
        x = x[None, :]
    lo = np.asarray(box_lo, dtype=np.int64)
    hi = np.asarray(box_hi, dtype=np.int64)
    if lo.ndim == 1:
        lo, hi = lo[None, :], hi[None, :]
    n = len(x)
    if not model.layers or n == 0:
        return np.zeros(n, dtype=bool)
    dec = np.argmax(model.forward_int(x), axis=1)
    valid = np.ones(n, dtype=bool)
    for layer in model.layers:
        outs_lo, outs_hi = [], []
        for table in layer.tables:
            start, stop = table.segment
            t_lo, t_hi, ok = _table_output_bounds(
                table, lo[:, start:stop], hi[:, start:stop])
            outs_lo.append(t_lo)
            outs_hi.append(t_hi)
            valid &= ok
        if layer.sum_reduce:
            fmt = layer.out_format
            lo = np.clip(sum(outs_lo), fmt.int_min, fmt.int_max)
            hi = np.clip(sum(outs_hi), fmt.int_min, fmt.int_max)
        else:
            lo = np.concatenate(outs_lo, axis=1)
            hi = np.concatenate(outs_hi, axis=1)
    rows = np.arange(n)
    runner_up = hi.copy()
    runner_up[rows, dec] = _INT64_MIN
    return valid & (lo[rows, dec] > runner_up.max(axis=1))


def certified_decision_box(model: CompiledModel, x_int: np.ndarray,
                           quantize_shift: int | None = None,
                           ) -> tuple[np.ndarray, np.ndarray]:
    """Widest available sound decision box per row.

    Starts from :func:`decision_cell_box` (always sound) and, when the
    caller names the L2 store's ``quantize_shift``, tries to upgrade each
    row's box to its whole quantization bucket — the axis-aligned cube of
    side ``1 << quantize_shift`` the row's quantized L2 key denotes. The
    upgrade is taken only when :func:`decision_box_certified` proves the
    decision constant over the full cube; certified rows then satisfy
    *bucket hit implies box hit*, which is what lets scenario families
    whose flows never repeat a window byte-for-byte still share decisions
    through the L2.
    """
    cell_lo, cell_hi = decision_cell_box(model, x_int)
    if quantize_shift is None or quantize_shift <= 0 or not model.layers:
        return cell_lo, cell_hi
    x = np.asarray(x_int, dtype=np.int64)
    if x.ndim == 1:
        x = x[None, :]
    if len(x) == 0:
        return cell_lo, cell_hi
    cube_lo = (x >> quantize_shift) << quantize_shift
    cube_hi = cube_lo + (1 << quantize_shift) - 1
    cert = decision_box_certified(model, x, cube_lo, cube_hi)[:, None]
    return (np.where(cert, cube_lo, cell_lo),
            np.where(cert, cube_hi, cell_hi))


def _materialize_map(step: MapStep, sum_reduce: bool, calib_int: np.ndarray,
                     in_format: QFormat, cfg: MaterializeConfig) -> LookupLayer:
    """Build the tables of one Map(+SumReduce) round from calibration data."""
    calib_float = in_format.dequantize(calib_int)

    # Pass 1: full-precision outputs to calibrate the output format. The
    # format must hold both each partial result and (if reducing) their sum.
    partials = [fn(calib_float[:, start:stop])
                for (start, stop), fn in zip(step.partition, step.fns)]
    samples = np.concatenate([p.ravel() for p in partials])
    if sum_reduce:
        total = np.sum(np.stack(partials), axis=0)
        samples = np.concatenate([samples, total.ravel()])
    out_format = choose_qformat(samples, cfg.act_bits, margin=cfg.calibration_margin)

    tables: list[SegmentTable] = []
    for (start, stop), fn in zip(step.partition, step.fns):
        d = stop - start
        seg_int = calib_int[:, start:stop]
        if d == 1 and in_format.total_bits <= cfg.exact_max_bits:
            lo = in_format.int_min
            n_entries = 1 << in_format.total_bits
            keys = np.arange(lo, lo + n_entries, dtype=np.int64)[:, None]
            values = fn(in_format.dequantize(keys))
            tables.append(SegmentTable(
                segment=(start, stop), kind="exact",
                values_int=out_format.quantize(values),
                out_format=out_format, in_bits=in_format.total_bits,
                in_signed=in_format.signed, exact_lo=lo))
        else:
            tree = FuzzyTree.fit(seg_int.astype(np.float64), n_leaves=cfg.fuzzy_leaves)
            values = fn(in_format.dequantize(tree.centroids))
            tables.append(SegmentTable(
                segment=(start, stop), kind="fuzzy",
                values_int=out_format.quantize(values),
                out_format=out_format, in_bits=in_format.total_bits,
                in_signed=in_format.signed, tree=tree))
    return LookupLayer(tables=tables, sum_reduce=sum_reduce, out_format=out_format)


def materialize(program: PrimitiveProgram, calib_int: np.ndarray,
                cfg: MaterializeConfig | None = None,
                input_bits: int = 8, input_frac_bits: int = 0,
                input_signed: bool = False,
                name: str = "pegasus") -> CompiledModel:
    """Compile a primitive program into an integer :class:`CompiledModel`.

    ``calib_int`` is the training-set inputs in the integer domain the
    dataplane sees (e.g. raw uint8 feature buckets). Each Map round's fuzzy
    trees are fitted on the integer activations flowing into that round,
    matching the paper's i.i.d. parameter-learning assumption.
    """
    cfg = cfg or MaterializeConfig()
    program.validate()
    calib_int = np.asarray(calib_int, dtype=np.int64)
    if calib_int.ndim != 2 or calib_int.shape[1] != program.input_dim:
        raise ShapeError(
            f"calibration data must be (N, {program.input_dim}), got {calib_int.shape}")

    in_format = QFormat(input_bits, input_frac_bits, signed=input_signed)
    model = CompiledModel(input_dim=program.input_dim, input_bits=input_bits, name=name)

    steps = list(program.steps)
    i = 0
    current_int = calib_int
    current_format = in_format
    while i < len(steps):
        step = steps[i]
        if not isinstance(step, MapStep):
            raise CompilationError(
                "program must alternate Map(+SumReduce); run fuse_basic first "
                f"(found leading {type(step).__name__})")
        sum_reduce = i + 1 < len(steps) and isinstance(steps[i + 1], SumReduceStep)
        layer = _materialize_map(step, sum_reduce, current_int, current_format, cfg)
        model.layers.append(layer)
        current_int = layer.forward_int(current_int)
        current_format = layer.out_format
        i += 2 if sum_reduce else 1
    return model
