"""Deprecation shims: direct runtime construction via the package namespace.

``repro.dataplane`` keeps exporting :class:`WindowedClassifierRuntime` and
:class:`TwoStageRuntime` under their old names, but constructing them that
way now emits a :class:`DeprecationWarning` pointing at
:class:`repro.serving.PegasusEngine` — the one build path that wires the
scheduler, cache, lookup backend, and topology consistently. Internal code
(the engine's runtime-kind builders, ``CNNL.make_runtime``, the tests'
reference stacks) constructs the real classes in
:mod:`repro.dataplane.runtime` and never warns.
"""

from __future__ import annotations

import warnings

from repro.dataplane import runtime as _runtime


def _warn(old: str, hint: str) -> None:
    warnings.warn(
        f"constructing {old} directly is deprecated; use "
        f"repro.serving.PegasusEngine.{hint} instead",
        # _warn -> __post_init__ -> dataclass-generated __init__ -> caller
        DeprecationWarning, stacklevel=4)


class WindowedClassifierRuntime(_runtime.WindowedClassifierRuntime):
    """Deprecated alias — see :class:`repro.serving.PegasusEngine`."""

    def __post_init__(self):
        _warn("WindowedClassifierRuntime", "from_compiled(compiled, ...)")
        super().__post_init__()


class TwoStageRuntime(_runtime.TwoStageRuntime):
    """Deprecated alias — see :class:`repro.serving.PegasusEngine`."""

    def __post_init__(self):
        _warn("TwoStageRuntime", "from_model(model, runtime='two_stage')")
        super().__post_init__()
