"""Exception hierarchy for the Pegasus reproduction.

All library-specific errors derive from :class:`PegasusError` so callers can
catch one base class at API boundaries.
"""

from __future__ import annotations


class PegasusError(Exception):
    """Base class for every error raised by this library."""


class ShapeError(PegasusError):
    """An array or vector had an incompatible shape."""


class QuantizationError(PegasusError):
    """A value could not be represented in the requested fixed-point format."""


class CompilationError(PegasusError):
    """The compiler could not lower a model to dataplane primitives."""


class ResourceExceededError(PegasusError):
    """A compiled program does not fit the target's hardware budget."""

    def __init__(self, resource: str, used: float, budget: float):
        self.resource = resource
        self.used = used
        self.budget = budget
        super().__init__(
            f"{resource} budget exceeded: used {used:g}, budget {budget:g}"
        )


class PipelineError(PegasusError):
    """The dataplane pipeline was configured or driven incorrectly."""


class TraceFormatError(PegasusError):
    """A serialized trace file is malformed."""


class TrainingError(PegasusError):
    """Model training failed or was mis-configured."""
