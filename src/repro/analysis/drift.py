"""``registry-config-drift``: EngineConfig fields vs. their two mirrors.

Every :class:`repro.serving.engine.EngineConfig` field is part of the
engine's public deployment surface, and two places must track it or the
config rots silently:

1. the **typed-validation table** — the ``kwargs,field`` parametrize table
   of ``TestEngineConfig.test_typed_validation`` in
   ``tests/test_serving_engine.py``, which proves each field rejects an
   invalid value with a :class:`ConfigError` naming it;
2. the **config listing** in ``docs/ARCHITECTURE.md`` — the documented
   deployment surface.

This is a :class:`ProjectRule`: it fires once per run, keyed off the
analyzed file whose module is ``repro.serving.engine``, and resolves the
two mirrors relative to that file's repo root (``src/repro/serving/`` ->
root). A temp copy of the tree lints the copy's own mirrors, so the
mutation tests can inject a fresh field and watch the rule catch it. A
missing mirror file is reported too — deleting the table must not
silence the check.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.analysis.core import FileContext, Finding, ProjectRule

ENGINE_MODULE = "repro.serving.engine"
TESTS_MIRROR = Path("tests") / "test_serving_engine.py"
DOCS_MIRROR = Path("docs") / "ARCHITECTURE.md"


def config_fields(engine_tree: ast.Module) -> list[tuple[str, int]]:
    """(field name, line) for every EngineConfig dataclass field."""
    for node in engine_tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "EngineConfig":
            return [(stmt.target.id, stmt.lineno) for stmt in node.body
                    if isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)]
    return []


def validation_table_fields(test_tree: ast.Module) -> set[str] | None:
    """Field names covered by the ``kwargs,field`` parametrize table.

    Coverage = the field appears as an expected-``ConfigError`` field
    string or as a kwarg of one of the invalid-config rows. Returns None
    when no such table exists (so the caller can distinguish "empty"
    from "missing").
    """
    covered: set[str] = None
    for node in ast.walk(test_tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "parametrize"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value == "kwargs,field"):
            continue
        covered = set() if covered is None else covered
        rows = node.args[1] if len(node.args) > 1 else None
        if not isinstance(rows, (ast.List, ast.Tuple)):
            continue
        for row in rows.elts:
            if not isinstance(row, ast.Tuple) or len(row.elts) != 2:
                continue
            kwargs_node, field_node = row.elts
            if isinstance(field_node, ast.Constant) \
                    and isinstance(field_node.value, str):
                covered.add(field_node.value)
            if isinstance(kwargs_node, ast.Call):
                covered.update(kw.arg for kw in kwargs_node.keywords
                               if kw.arg)
            elif isinstance(kwargs_node, ast.Dict):
                covered.update(k.value for k in kwargs_node.keys
                               if isinstance(k, ast.Constant))
    return covered


class RegistryConfigDriftRule(ProjectRule):
    name = "registry-config-drift"
    description = ("every EngineConfig field must appear in the "
                   "typed-validation table (tests/test_serving_engine.py) "
                   "and in the ARCHITECTURE.md config listing")
    example = ("src/repro/serving/engine.py:63: [registry-config-drift] "
               "EngineConfig field 'queue_capacity' missing from the "
               "typed-validation table in tests/test_serving_engine.py")

    def check_project(self, contexts: list[FileContext]) -> list[Finding]:
        engine_ctx = next((c for c in contexts
                           if c.module == ENGINE_MODULE), None)
        if engine_ctx is None:
            return []
        fields = config_fields(engine_ctx.tree)
        if not fields:
            engine_ctx.report(engine_ctx.tree, self.name,
                              "repro.serving.engine defines no EngineConfig "
                              "dataclass fields — the drift check has "
                              "nothing to anchor to")
            return []
        # engine.py -> serving -> repro -> src -> repo root
        root = engine_ctx.path.parent.parent.parent.parent
        self._check_tests(engine_ctx, fields, root / TESTS_MIRROR)
        self._check_docs(engine_ctx, fields, root / DOCS_MIRROR)
        return []

    def _check_tests(self, ctx: FileContext, fields, mirror: Path) -> None:
        try:
            tree = ast.parse(mirror.read_text(encoding="utf-8"))
        except (OSError, SyntaxError):
            ctx.report(ctx.tree, self.name,
                       f"typed-validation mirror {mirror} is missing or "
                       f"unparsable; the EngineConfig drift check cannot run")
            return
        covered = validation_table_fields(tree)
        if covered is None:
            ctx.report(ctx.tree, self.name,
                       f"{mirror} has no 'kwargs,field' parametrize table; "
                       f"the typed-validation coverage check cannot run")
            return
        for field, line in fields:
            if field not in covered:
                ctx.findings.append(Finding(
                    self.name, ctx.display_path, line,
                    f"EngineConfig field '{field}' has no row in the "
                    f"typed-validation table "
                    f"(TestEngineConfig.test_typed_validation): add an "
                    f"invalid value that raises ConfigError('{field}', ...)"))

    def _check_docs(self, ctx: FileContext, fields, mirror: Path) -> None:
        try:
            text = mirror.read_text(encoding="utf-8")
        except OSError:
            ctx.report(ctx.tree, self.name,
                       f"config-listing mirror {mirror} is missing; the "
                       f"EngineConfig documentation check cannot run")
            return
        for field, line in fields:
            if not re.search(rf"\b{re.escape(field)}\b", text):
                ctx.findings.append(Finding(
                    self.name, ctx.display_path, line,
                    f"EngineConfig field '{field}' is not documented in "
                    f"{DOCS_MIRROR} — add it to the config listing"))
