"""Table 2: Pegasus (CNN-L) vs prior works — accuracy gain, model-size and
input-scale ratios. Derived from the Table 5 runs (shared cache)."""

from repro.eval.reporting import render_table
from repro.eval.runner import run_table2, run_table5


def _run(scale):
    table5 = run_table5(flows_per_class=scale["flows_per_class"], seed=scale["seed"])
    return run_table2(table5)


def test_table2(benchmark, bench_scale):
    ratios = benchmark.pedantic(_run, args=(bench_scale,), rounds=1, iterations=1)
    rows = []
    for prior, entry in ratios.items():
        rows.append([prior,
                     f"{entry['accuracy_gain'] * 100:+.1f}%",
                     f"{entry.get('model_size_ratio', float('nan')):.0f}x",
                     f"{entry.get('input_scale_ratio', float('nan')):.0f}x"])
    print()
    print(render_table(["prior work", "accuracy", "model size", "input scale"],
                       rows, title="Table 2 — Pegasus vs prior works"))

    # Shapes: Pegasus gains accuracy over every prior work and scales the
    # input by 30x over N3IC/Leo and >100x over BoS.
    assert all(e["accuracy_gain"] > 0 for e in ratios.values())
    assert ratios["N3IC"]["input_scale_ratio"] == 3840 / 128
    assert ratios["BoS"]["input_scale_ratio"] > 100
    assert ratios["N3IC"]["model_size_ratio"] > 10
