"""The invariant-linter core: findings, rules, suppressions, one-pass dispatch.

The dynamic walls (differential fuzzing, golden replays, mutation tests)
prove the engine's contracts hold *today*; this package is the static wall
that flags the change that would break them at the line that introduces it.
Everything here is stdlib-only (``ast`` + ``tokenize``) so the gate runs on
machines without any third-party lint tooling installed.

Vocabulary:

- :class:`Finding` — one ``(rule, path, line, msg)`` violation record.
- :class:`Rule` — a named check that registers interest in AST node types
  via :meth:`Rule.visitors`; every rule's handlers run in **one** recursive
  pass per file (single-pass visitor dispatch — the tree is never re-walked
  per rule).
- :class:`ProjectRule` — a cross-file check that runs once over the whole
  analyzed file set (e.g. config/docs drift).
- :class:`FileContext` — per-file state handed to handlers: the parsed
  tree, resolved dotted module name, an import table for resolving aliased
  calls (``np.random.shuffle`` -> ``numpy.random.shuffle``), the lexical
  scope stack, and ``report()``.

Suppressions: a ``# reprolint: disable=<rule>[,<rule>...]`` comment on (or
inside the span of) the flagged statement silences that rule there. Every
suppression must earn its keep — one that silences nothing is itself
reported as ``unused-suppression``, so stale exemptions cannot accumulate.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\- ]+)")

#: The rule name that flags suppression comments which silenced nothing.
UNUSED_SUPPRESSION = "unused-suppression"


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source line."""

    rule: str
    path: str
    line: int
    msg: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.msg}"

    def to_json(self) -> dict:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "msg": self.msg}


class Rule:
    """One per-file invariant check.

    Subclasses set ``name`` / ``description`` and return a mapping of AST
    node-type *names* to bound handlers from :meth:`visitors`; the walker
    calls each handler as ``handler(ctx, node)`` during the single pass.
    ``begin_file`` / ``end_file`` bracket each file for per-file state.
    """

    name = ""
    description = ""
    example = ""                # a representative finding line, for --explain

    def visitors(self) -> dict:
        return {}

    def begin_file(self, ctx: "FileContext") -> None:
        pass

    def end_file(self, ctx: "FileContext") -> None:
        pass


class ProjectRule(Rule):
    """A check over the whole analyzed file set (cross-file invariants)."""

    def check_project(self, contexts: list["FileContext"]) -> list[Finding]:
        raise NotImplementedError


def module_name_for(path: Path) -> str | None:
    """Dotted in-repo module name, or None for non-package files.

    Resolved from the *last* ``repro`` path segment so temp copies of real
    modules (``/tmp/x/src/repro/dataplane/foo.py``) lint under the same
    module-scoped rules as the originals.
    """
    parts = list(path.parts)
    if "repro" not in parts:
        return None
    i = len(parts) - 1 - parts[::-1].index("repro")
    mod_parts = parts[i:]
    if mod_parts[-1].endswith(".py"):
        mod_parts[-1] = mod_parts[-1][:-3]
    if mod_parts[-1] == "__init__":
        mod_parts = mod_parts[:-1]
    return ".".join(mod_parts)


class ImportTable:
    """Alias -> real dotted name map for one file.

    Flat (scope-less) on purpose: shadowing an imported module name with a
    local of the same name is itself suspicious code, and treating the name
    as the import everywhere only errs toward flagging.
    """

    def __init__(self, tree: ast.AST):
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    self.aliases[name] = alias.name if alias.asname \
                        else alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.aliases[alias.asname or alias.name] = \
                        f"{node.module}.{alias.name}"

    def resolve(self, dotted: str) -> str:
        """Map the first segment through the import table."""
        head, _, rest = dotted.partition(".")
        real = self.aliases.get(head)
        if real is None:
            return dotted
        return f"{real}.{rest}" if rest else real


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain rooted at a Name, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class FileContext:
    """Everything the handlers of one file share."""

    def __init__(self, path: Path, display_path: str, source: str,
                 tree: ast.Module):
        self.path = path
        self.display_path = display_path
        self.source = source
        self.tree = tree
        self.module = module_name_for(path)
        self.is_test = any(part == "tests" for part in path.parts) \
            or path.name.startswith("test_") or path.name == "conftest.py"
        self.is_init = path.name == "__init__.py"
        self.imports = ImportTable(tree)
        self.stack: list[ast.AST] = []      # ancestors, outermost first
        self.scopes: list[ast.AST] = []     # Module/ClassDef/FunctionDef/Lambda
        self.findings: list[Finding] = []

    def resolve_call(self, node: ast.Call) -> str | None:
        """The real dotted name a call targets, via the import table."""
        dotted = dotted_name(node.func)
        return self.imports.resolve(dotted) if dotted else None

    def report(self, node: ast.AST, rule: str, msg: str) -> None:
        self.findings.append(Finding(rule, self.display_path,
                                     getattr(node, "lineno", 1), msg))

    def enclosing_function(self) -> ast.AST | None:
        for scope in reversed(self.scopes):
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return scope
        return None

    def enclosing_class(self) -> ast.ClassDef | None:
        for scope in reversed(self.scopes):
            if isinstance(scope, ast.ClassDef):
                return scope
        return None


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                ast.Lambda)


class _Walker:
    """Single recursive pass dispatching each node to interested rules."""

    def __init__(self, ctx: FileContext, rules: list[Rule]):
        self.ctx = ctx
        self.dispatch: dict[str, list] = {}
        for rule in rules:
            for node_type, handler in rule.visitors().items():
                self.dispatch.setdefault(node_type, []).append(handler)

    def walk(self, node: ast.AST) -> None:
        for handler in self.dispatch.get(type(node).__name__, ()):
            handler(self.ctx, node)
        is_scope = isinstance(node, _SCOPE_NODES)
        self.ctx.stack.append(node)
        if is_scope:
            self.ctx.scopes.append(node)
        for child in ast.iter_child_nodes(node):
            self.walk(child)
        if is_scope:
            self.ctx.scopes.pop()
        self.ctx.stack.pop()


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Line -> suppressed rule names, from ``# reprolint: disable=`` comments."""
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = SUPPRESS_RE.search(line)
        if match:
            rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
            if rules:
                out[lineno] = rules
    return out


def _node_spans(tree: ast.Module) -> dict[int, int]:
    """Start line -> max end line over all nodes starting there."""
    spans: dict[int, int] = {}
    for node in ast.walk(tree):
        lineno = getattr(node, "lineno", None)
        end = getattr(node, "end_lineno", None)
        if lineno is not None and end is not None:
            spans[lineno] = max(spans.get(lineno, lineno), end)
    return spans


def apply_suppressions(ctx: FileContext,
                       report_unused: bool = True) -> list[Finding]:
    """Drop suppressed findings; report suppressions that earned nothing.

    A suppression comment matches a finding when it sits on any line of the
    statement that *starts* at the finding's line (multi-line calls can
    carry the comment on their closing line). ``report_unused=False`` skips
    the staleness check — correct when only a subset of rules ran, since a
    suppression for an unselected rule is unjudgeable on that run.
    """
    suppressions = parse_suppressions(ctx.source)
    if not suppressions:
        return ctx.findings
    spans = _node_spans(ctx.tree)
    used: set[int] = set()
    kept: list[Finding] = []
    for finding in ctx.findings:
        end = spans.get(finding.line, finding.line)
        hit = None
        for line in range(finding.line, end + 1):
            rules = suppressions.get(line)
            if rules and (finding.rule in rules or "all" in rules):
                hit = line
                break
        if hit is None:
            kept.append(finding)
        else:
            used.add(hit)
    if not report_unused:
        return kept
    for line in sorted(set(suppressions) - used):
        names = ",".join(sorted(suppressions[line]))
        kept.append(Finding(
            UNUSED_SUPPRESSION, ctx.display_path, line,
            f"suppression 'reprolint: disable={names}' matched no finding; "
            f"remove it (stale exemptions hide future violations)"))
    return kept


def iter_python_files(paths: list[str | Path]) -> list[tuple[Path, str]]:
    """(resolved path, display path) for every .py under the given paths."""
    skip_dirs = {"__pycache__", ".git", ".hypothesis", "build", "dist",
                 ".venv", "node_modules"}
    out: list[tuple[Path, str]] = []
    seen: set[Path] = set()
    for raw in paths:
        base = Path(raw)
        if base.is_file():
            candidates = [base]
        else:
            candidates = sorted(
                p for p in base.rglob("*.py")
                if not any(part in skip_dirs for part in p.parts))
        for path in candidates:
            resolved = path.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append((resolved, str(path)))
    return out


def _lint_file(source: str, path: Path, display: str, rules: list[Rule]
               ) -> tuple[list[Finding], FileContext | None]:
    """Run the per-file rules; suppressions are NOT applied yet."""
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        return [Finding("syntax-error", display, exc.lineno or 1,
                        f"file does not parse: {exc.msg}")], None
    ctx = FileContext(path, display, source, tree)
    per_file = [r for r in rules if not isinstance(r, ProjectRule)]
    for rule in per_file:
        rule.begin_file(ctx)
    _Walker(ctx, per_file).walk(tree)
    for rule in per_file:
        rule.end_file(ctx)
    return [], ctx


def analyze_source(source: str, path: Path, display_path: str | None = None,
                   rules: list[Rule] | None = None
                   ) -> tuple[list[Finding], FileContext | None]:
    """Lint one in-memory source blob; (findings, context or None on error)."""
    if rules is None:
        from repro.analysis.rules import default_rules
        rules = default_rules()
    display = display_path or str(path)
    findings, ctx = _lint_file(source, path, display, rules)
    if ctx is not None:
        findings = apply_suppressions(ctx)
    return findings, ctx


def analyze_paths(paths: list[str | Path],
                  rules: list[Rule] | None = None,
                  report_unused: bool = True) -> list[Finding]:
    """Lint every .py file under ``paths`` with the given (or default) rules.

    Project rules run after all files are parsed and report *through* the
    per-file contexts, so ``# reprolint: disable=`` comments silence their
    findings exactly like any per-file rule's.
    """
    if rules is None:
        from repro.analysis.rules import default_rules
        rules = default_rules()
    findings: list[Finding] = []
    contexts: list[FileContext] = []
    for path, display in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(Finding("unreadable-file", display, 1, str(exc)))
            continue
        errors, ctx = _lint_file(source, path, display, rules)
        findings.extend(errors)
        if ctx is not None:
            contexts.append(ctx)
    for rule in rules:
        if isinstance(rule, ProjectRule):
            findings.extend(rule.check_project(contexts))
    for ctx in contexts:
        findings.extend(apply_suppressions(ctx, report_unused=report_unused))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
