"""PISA dataplane substrate: pipeline, tables, registers, resource model.

Stands in for the paper's Barefoot Tofino 2 testbed. The simulator enforces
the same constraints the paper designs around: a fixed number of match-action
stages, per-stage SRAM / TCAM budgets, a bounded action-data bus, a bounded
PHV, integer-only actions (add/sub/shift/bit-ops — no multiply, divide or
float), and stateful per-flow registers whose size trades off against the
number of concurrent flows.
"""

from repro.dataplane.schema import (ColumnSchema, ColumnSpec,
                                    DECISION_COLUMNS, WIRE_COLUMNS,
                                    decision_dtype, wire_dtype)
from repro.dataplane.target import TargetConfig, TOFINO2, GENERIC_PISA
from repro.dataplane.phv import PHVAllocator, PHVField
from repro.dataplane.tables import TernaryTableEntry, ternary_entries_for_tree, tcam_lookup
from repro.dataplane.tcam import (PackedTernaryTable, TcamSegment,
                                  compile_segment_table, tcam_table_report)
from repro.dataplane.pipeline import Pipeline, place_model, TablePlacement, StageBudget
from repro.dataplane.registers import (FlowStateTable, FlowStateLayout,
                                       RegisterField, VectorFlowState)
from repro.dataplane.resources import ResourceReport, summarize_resources
from repro.dataplane.runtime import PacketDecision, DEFAULT_BATCH_SIZE
# Package-level runtime names are deprecation shims: direct construction
# still works but warns, pointing at repro.serving.PegasusEngine. Internal
# callers import the real classes from repro.dataplane.runtime.
from repro.dataplane.compat import WindowedClassifierRuntime, TwoStageRuntime
from repro.dataplane.throughput import line_rate_pps, measure_model_throughput

__all__ = [
    "ColumnSchema",
    "ColumnSpec",
    "DECISION_COLUMNS",
    "WIRE_COLUMNS",
    "decision_dtype",
    "wire_dtype",
    "TargetConfig",
    "TOFINO2",
    "GENERIC_PISA",
    "PHVAllocator",
    "PHVField",
    "TernaryTableEntry",
    "ternary_entries_for_tree",
    "tcam_lookup",
    "PackedTernaryTable",
    "TcamSegment",
    "compile_segment_table",
    "tcam_table_report",
    "Pipeline",
    "place_model",
    "TablePlacement",
    "StageBudget",
    "FlowStateTable",
    "FlowStateLayout",
    "RegisterField",
    "VectorFlowState",
    "ResourceReport",
    "summarize_resources",
    "WindowedClassifierRuntime",
    "TwoStageRuntime",
    "PacketDecision",
    "DEFAULT_BATCH_SIZE",
    "line_rate_pps",
    "measure_model_throughput",
]
