"""CNN-B / CNN-M / CNN-L: the paper's 1-D convolutional family (§6.3).

- **CNN-B** (basic fusion): a block convolution over the window's (length,
  IPD) token pairs — a shared linear filter per packet position — followed
  by ReLU and a fully connected head. Compiles to two lookup rounds.
- **CNN-M** (Advanced Primitive Fusion ❸): a larger Neural-Additive model;
  each packet position owns a subnetwork whose outputs SumReduce into the
  logits. A *single* lookup round despite the much larger model size —
  the paper's "bigger model, lower overhead" result.
- **CNN-L** (Advanced Fusion + flow scalability): per-packet subnet over 60
  raw payload bytes (3840-bit input scale). On the switch each packet is
  reduced to a small *fuzzy index* when it arrives; only indexes (plus a
  16-bit timestamp when IPD is used) are stored per flow, enabling 28-72
  stateful bits per flow (Figure 7's trade-off).
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.core import fuse_basic, materialize, MaterializeConfig, \
    PegasusCompiler, CompilerConfig
from repro.core.fuzzy import FuzzyTree
from repro.core.primitives import (
    Affine, ElementwiseFunc, MapStep, PrimitiveProgram, SumReduceStep,
)
from repro.dataplane.registers import FlowStateLayout, RegisterField
from repro.dataplane.runtime import TwoStageRuntime
from repro.models.base import TrafficModel
from repro.net.features import SEQ_WINDOW, SEQ_TOKENS, RAW_BYTES_PER_PACKET
from repro.utils.fixed_point import choose_qformat


class _BlockConvNet(nn.Module):
    """Shared 2->c filter per packet position, ReLU, FC head (CNN-B float)."""

    def __init__(self, n_classes: int, channels: int, rngs):
        super().__init__()
        self.channels = channels
        self.filt = nn.Linear(2, channels, rng=int(rngs[0]))
        self.relu = nn.ReLU()
        self.head = nn.Linear(SEQ_WINDOW * channels, n_classes, rng=int(rngs[1]))

    def forward(self, x: np.ndarray) -> np.ndarray:
        n = x.shape[0]
        pairs = x.reshape(n * SEQ_WINDOW, 2).astype(np.float64)
        conv = self.filt.forward(pairs)
        act = self.relu.forward(conv)
        return self.head.forward(act.reshape(n, -1))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        n = grad_out.shape[0]
        grad_flat = self.head.backward(grad_out)
        grad_act = grad_flat.reshape(n * SEQ_WINDOW, self.channels)
        grad_conv = self.relu.backward(grad_act)
        grad_pairs = self.filt.backward(grad_conv)
        return grad_pairs.reshape(n, SEQ_TOKENS)


class CNNB(TrafficModel):
    name = "CNN-B"
    feature_view = "seq"

    def __init__(self, n_classes: int, seed: int = 0, channels: int = 8,
                 epochs: int = 80, fuzzy_leaves: int = 128):
        super().__init__(n_classes, seed)
        rngs = np.random.default_rng(seed).integers(0, 2**31, size=2)
        self.net = _BlockConvNet(n_classes, channels, rngs)
        self.epochs = epochs
        self.fuzzy_leaves = fuzzy_leaves

    def train(self, views: dict[str, np.ndarray]) -> None:
        x = self.view(views, "seq").astype(np.float64)
        y = self.view(views, "y")
        nn.fit(self.net, x, y, nn.CrossEntropyLoss(),
               nn.Adam(self.net.parameters(), lr=0.02),
               epochs=self.epochs, batch_size=64, rng=self.seed)
        self.trained = True

    def predict_float(self, views: dict[str, np.ndarray]) -> np.ndarray:
        self._require_trained()
        return nn.predict_classes(self.net, self.view(views, "seq"))

    def _program(self) -> PrimitiveProgram:
        c = self.net.channels
        w_f = self.net.filt.weight.data
        b_f = self.net.filt.bias.data
        w_h = self.net.head.weight.data
        b_h = self.net.head.bias.data
        conv_parts = [(2 * i, 2 * i + 2) for i in range(SEQ_WINDOW)]
        conv_fns = [Affine(w_f, b_f) for _ in conv_parts]
        relu = ElementwiseFunc(lambda v: np.maximum(v, 0.0),
                               SEQ_WINDOW * c, name="relu")
        head_parts = [(c * i, c * (i + 1)) for i in range(SEQ_WINDOW)]
        head_fns = [Affine(w_h[s:e], b_h / SEQ_WINDOW) for s, e in head_parts]
        program = PrimitiveProgram(
            input_dim=SEQ_TOKENS,
            steps=[MapStep(conv_parts, conv_fns),
                   MapStep([(0, SEQ_WINDOW * c)], [relu]),
                   MapStep(head_parts, head_fns),
                   SumReduceStep(SEQ_WINDOW, self.n_classes)])
        program.validate()
        return program

    def compile_dataplane(self, views: dict[str, np.ndarray]) -> None:
        self._require_trained()
        calib = self.view(views, "seq").astype(np.int64)
        program = fuse_basic(self._program())
        self.compiled = materialize(
            program, calib, MaterializeConfig(fuzzy_leaves=self.fuzzy_leaves),
            name="cnn-b")
        self.program = program

    def predict_dataplane(self, views: dict[str, np.ndarray]) -> np.ndarray:
        self._require_compiled()
        return self.compiled.predict(self.view(views, "seq").astype(np.int64))

    def model_size_kbits(self) -> float:
        return self.net.param_count() * 32 / 1000

    def input_scale_bits(self) -> int:
        return SEQ_TOKENS * 8

    def flow_layout(self) -> FlowStateLayout:
        return FlowStateLayout(fields=[
            RegisterField("prev_ts", 16),
            RegisterField("count", 8),
            RegisterField("tok_hist", 8, count=6),
        ])  # 72 bits/flow (paper's CNN-B row)


class _AdditiveNet(nn.Module):
    """Per-slot subnetworks whose outputs sum into the logits (CNN-M float)."""

    def __init__(self, n_classes: int, hidden: int, rngs):
        super().__init__()
        self.subnets = [
            nn.Sequential(
                nn.Linear(2, hidden, rng=int(rngs[3 * i])),
                nn.ReLU(),
                nn.Linear(hidden, hidden, rng=int(rngs[3 * i + 1])),
                nn.ReLU(),
                nn.Linear(hidden, n_classes, rng=int(rngs[3 * i + 2])),
            )
            for i in range(SEQ_WINDOW)
        ]

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = x.astype(np.float64)
        out = None
        for i, subnet in enumerate(self.subnets):
            contrib = subnet.forward(x[:, 2 * i:2 * i + 2])
            out = contrib if out is None else out + contrib
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grads = [subnet.backward(grad_out) for subnet in self.subnets]
        return np.concatenate(grads, axis=1)


class CNNM(TrafficModel):
    name = "CNN-M"
    feature_view = "seq"

    def __init__(self, n_classes: int, seed: int = 0, hidden: int = 48,
                 epochs: int = 60, fuzzy_leaves: int = 256):
        super().__init__(n_classes, seed)
        rngs = np.random.default_rng(seed).integers(0, 2**31, size=3 * SEQ_WINDOW)
        self.net = _AdditiveNet(n_classes, hidden, rngs)
        self.epochs = epochs
        self.fuzzy_leaves = fuzzy_leaves

    def train(self, views: dict[str, np.ndarray]) -> None:
        x = self.view(views, "seq")
        y = self.view(views, "y")
        nn.fit(self.net, x, y, nn.CrossEntropyLoss(),
               nn.Adam(self.net.parameters(), lr=0.005),
               epochs=self.epochs, batch_size=64, rng=self.seed)
        self.trained = True

    def predict_float(self, views: dict[str, np.ndarray]) -> np.ndarray:
        self._require_trained()
        return nn.predict_classes(self.net, self.view(views, "seq"))

    def compile_dataplane(self, views: dict[str, np.ndarray]) -> None:
        self._require_trained()
        calib = self.view(views, "seq").astype(np.int64)
        partition = [(2 * i, 2 * i + 2) for i in range(SEQ_WINDOW)]

        def make_fn(subnet):
            return lambda seg: subnet.forward(seg)

        compiler = PegasusCompiler(CompilerConfig(fuzzy_leaves=self.fuzzy_leaves))
        result = compiler.compile_additive(
            partition, [make_fn(s) for s in self.net.subnets],
            out_dim=self.n_classes, calib_int=calib, name="cnn-m")
        self.compiled = result.compiled
        self.result = result

    def predict_dataplane(self, views: dict[str, np.ndarray]) -> np.ndarray:
        self._require_compiled()
        return self.compiled.predict(self.view(views, "seq").astype(np.int64))

    def model_size_kbits(self) -> float:
        return self.net.param_count() * 32 / 1000

    def input_scale_bits(self) -> int:
        return SEQ_TOKENS * 8

    def flow_layout(self) -> FlowStateLayout:
        return FlowStateLayout(fields=[
            RegisterField("prev_ts", 16),
            RegisterField("count", 8),
            RegisterField("tok_hist", 8, count=6),
        ])  # 72 bits/flow


class _ByteTrunk(nn.Module):
    """Shared per-packet subnet over 60 raw bytes (CNN-L float trunk)."""

    def __init__(self, n_classes: int, emb_dim: int, hidden: int, rngs):
        super().__init__()
        self.seq = nn.Sequential(
            nn.Embedding(256, emb_dim, rng=int(rngs[0])),
            nn.Flatten(),
            nn.Linear(RAW_BYTES_PER_PACKET * emb_dim, hidden, rng=int(rngs[1])),
            nn.ReLU(),
            nn.Linear(hidden, hidden // 2, rng=int(rngs[2])),
            nn.ReLU(),
            nn.Linear(hidden // 2, n_classes, rng=int(rngs[3])),
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.seq.forward(x.astype(np.int64))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.seq.backward(grad_out)


class _CNNLNet(nn.Module):
    """CNN-L float model: SumReduce of shared byte-trunk + shared IPD head."""

    def __init__(self, n_classes: int, emb_dim: int, hidden: int,
                 use_ipd: bool, rngs):
        super().__init__()
        self.n_classes = n_classes
        self.use_ipd = use_ipd
        self.trunk = _ByteTrunk(n_classes, emb_dim, hidden, rngs)
        self.ipd_head = nn.Sequential(
            nn.Embedding(256, 8, rng=int(rngs[4])),
            nn.Flatten(),
            nn.Linear(8, n_classes, rng=int(rngs[5])),
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        # x: (N, 8*60 + 8) = flattened raw bytes + per-packet IPD buckets.
        n = x.shape[0]
        raw = x[:, :SEQ_WINDOW * RAW_BYTES_PER_PACKET]
        bytes_in = raw.reshape(n * SEQ_WINDOW, RAW_BYTES_PER_PACKET)
        contrib = self.trunk.forward(bytes_in).reshape(n, SEQ_WINDOW, self.n_classes)
        out = contrib.sum(axis=1)
        if self.use_ipd:
            ipd = x[:, SEQ_WINDOW * RAW_BYTES_PER_PACKET:]
            ipd_in = ipd.reshape(n * SEQ_WINDOW, 1)
            ipd_c = self.ipd_head.forward(ipd_in).reshape(n, SEQ_WINDOW, self.n_classes)
            out = out + ipd_c.sum(axis=1)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        n = grad_out.shape[0]
        rep = np.repeat(grad_out, SEQ_WINDOW, axis=0)
        self.trunk.backward(rep)
        if self.use_ipd:
            self.ipd_head.backward(rep)
        return np.zeros((n, 1))  # integer inputs carry no gradient


class CNNL(TrafficModel):
    """CNN-L with the Figure-7 per-flow storage variants.

    ``idx_bits`` sets the fuzzy-index width stored per past packet;
    ``use_ipd`` toggles the 16-bit timestamp + IPD feature. Per-flow bits:
    28 (4-bit idx, no IPD), 44 (4-bit idx + IPD), 72 (8-bit idx + IPD).
    """

    name = "CNN-L"
    feature_view = "raw"

    def __init__(self, n_classes: int, seed: int = 0, emb_dim: int = 8,
                 hidden: int = 64, epochs: int = 25, idx_bits: int = 4,
                 use_ipd: bool = True):
        super().__init__(n_classes, seed)
        rngs = np.random.default_rng(seed).integers(0, 2**31, size=6)
        self.net = _CNNLNet(n_classes, emb_dim, hidden, use_ipd, rngs)
        self.epochs = epochs
        self.idx_bits = idx_bits
        self.use_ipd = use_ipd
        self.extractor_tree: FuzzyTree | None = None
        self.slot_values: np.ndarray | None = None
        self.out_format = None

    @staticmethod
    def _flat_input(views: dict[str, np.ndarray]) -> np.ndarray:
        raw = views["raw"].reshape(len(views["raw"]), -1).astype(np.int64)
        ipd = views["seq"][:, 1::2].astype(np.int64)  # odd tokens are IPDs
        return np.concatenate([raw, ipd], axis=1)

    def train(self, views: dict[str, np.ndarray]) -> None:
        x = self._flat_input(views)
        y = self.view(views, "y")
        nn.fit(self.net, x, y, nn.CrossEntropyLoss(),
               nn.Adam(self.net.parameters(), lr=0.003),
               epochs=self.epochs, batch_size=64, rng=self.seed)
        self.trained = True

    def predict_float(self, views: dict[str, np.ndarray]) -> np.ndarray:
        self._require_trained()
        return nn.predict_classes(self.net, self._flat_input(views))

    def _packet_features(self, bytes_rows: np.ndarray,
                         ipd_buckets: np.ndarray | None) -> np.ndarray:
        """Refined per-packet features the fuzzy index is computed on.

        Paper §7.3: "Pegasus first uses a neural network to extract
        high-level, refined features from each packet ... these features
        can be further compressed through fuzzy matching". The feature is
        the packet's *total* class contribution — byte trunk plus (when
        enabled) the IPD head — so a single stored index carries both and
        the per-flow state is exactly [prev_ts, idx x 7] = 44 bits.
        Clustering raw bytes instead would fail: min-SSE splits chase
        high-variance payload noise.
        """
        feats = self.net.trunk.forward(np.asarray(bytes_rows, dtype=np.int64))
        if self.use_ipd and ipd_buckets is not None:
            feats = feats + self.net.ipd_head.forward(
                np.asarray(ipd_buckets, dtype=np.int64).reshape(-1, 1))
        return feats

    def _per_packet_inputs(self, views: dict[str, np.ndarray]
                           ) -> tuple[np.ndarray, np.ndarray | None]:
        raw = self.view(views, "raw").astype(np.int64)
        n = len(raw)
        flat = raw.reshape(n * SEQ_WINDOW, RAW_BYTES_PER_PACKET)
        ipd = None
        if self.use_ipd:
            ipd = views["seq"][:, 1::2].astype(np.int64).reshape(n * SEQ_WINDOW)
        return flat, ipd

    def compile_dataplane(self, views: dict[str, np.ndarray]) -> None:
        self._require_trained()
        flat, ipd = self._per_packet_inputs(views)
        n_leaves = 1 << self.idx_bits
        feats = self._packet_features(flat, ipd)
        fit_rows = feats
        if len(fit_rows) > 6000:
            sel = np.random.default_rng(self.seed).choice(len(fit_rows), 6000,
                                                          replace=False)
            fit_rows = fit_rows[sel]
        self.extractor_tree = FuzzyTree.fit(fit_rows, n_leaves=n_leaves,
                                            min_cluster=4)
        # Leaf values: the mean per-packet contribution of the leaf's
        # members (refined below by least squares on the window objective).
        value_float = self.extractor_tree.centroids.copy()
        self.out_format = choose_qformat(value_float.ravel() * SEQ_WINDOW, 16)
        self.slot_values = self.out_format.quantize(value_float)
        self._refine(views)
        self.compiled = self  # self-hosting compiled artifact

    def _refine(self, views: dict[str, np.ndarray]) -> None:
        """Least-squares refinement of the shared contribution table against
        the float model's logits (the §4.4 mapping optimization)."""
        flat, ipd = self._per_packet_inputs(views)
        feats = self._packet_features(flat, ipd)
        n = len(feats) // SEQ_WINDOW
        idx = self.extractor_tree.predict_index(feats).reshape(n, SEQ_WINDOW)
        n_leaves = self.extractor_tree.n_leaves
        counts = np.zeros((n, n_leaves))
        for s in range(SEQ_WINDOW):
            counts[np.arange(n), idx[:, s]] += 1.0
        target = feats.reshape(n, SEQ_WINDOW, -1).sum(axis=1)
        gram = counts.T @ counts + 1e-6 * np.eye(n_leaves)
        solution = np.linalg.solve(gram, counts.T @ target)
        self.slot_values = self.out_format.quantize(solution)

    def _dataplane_logits(self, views: dict[str, np.ndarray]) -> np.ndarray:
        flat, ipd = self._per_packet_inputs(views)
        feats = self._packet_features(flat, ipd)
        n = len(feats) // SEQ_WINDOW
        idx = self.extractor_tree.predict_index(feats)
        logits = self.slot_values[idx].reshape(n, SEQ_WINDOW, -1).sum(axis=1)
        return np.clip(logits, self.out_format.int_min * SEQ_WINDOW,
                       self.out_format.int_max * SEQ_WINDOW)

    def predict_dataplane(self, views: dict[str, np.ndarray]) -> np.ndarray:
        self._require_compiled()
        return np.argmax(self._dataplane_logits(views), axis=1)

    def make_runtime(self, capacity: int = 1_000_000) -> TwoStageRuntime:
        """A packet-level runtime storing only fuzzy indexes per flow."""
        self._require_compiled()

        def feature_fn(rows, ipd_bucket=None):
            ipd = None if ipd_bucket is None else np.atleast_1d(ipd_bucket)
            return self._packet_features(rows, ipd)

        return TwoStageRuntime(
            extractor_tree=self.extractor_tree,
            feature_fn=feature_fn,
            slot_values=[self.slot_values] * SEQ_WINDOW,
            n_classes=self.n_classes,
            idx_bits=self.idx_bits,
            needs_ipd=self.use_ipd,
            capacity=capacity)

    def model_size_kbits(self) -> float:
        return self.net.param_count() * 32 / 1000

    def input_scale_bits(self) -> int:
        return SEQ_WINDOW * RAW_BYTES_PER_PACKET * 8  # 3840 bits

    def flow_layout(self) -> FlowStateLayout:
        fields = [RegisterField("idx_hist", self.idx_bits, count=SEQ_WINDOW - 1)]
        if self.use_ipd:
            fields.insert(0, RegisterField("prev_ts", 16))
        return FlowStateLayout(fields=fields)

    # -- resource accounting for Table 6 -------------------------------------

    def sram_bits(self) -> int:
        n_leaves = self.extractor_tree.n_leaves if self.extractor_tree else 0
        out_bits = self.out_format.total_bits if self.out_format else 16
        return SEQ_WINDOW * n_leaves * self.n_classes * out_bits

    def tcam_bits(self) -> int:
        # The extractor tree ranges over the trunk's refined features
        # (16-bit fixed point, one per class contribution).
        if self.extractor_tree is None:
            return 0
        entries = self.extractor_tree.tcam_entries(key_bits=16, signed=True)
        return entries * 2 * 16 * self.extractor_tree.dim

    def bus_bits(self) -> int:
        out_bits = self.out_format.total_bits if self.out_format else 16
        return self.n_classes * out_bits * 2
