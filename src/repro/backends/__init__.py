"""Code emitters: compiled Pegasus models -> P4_16 source or eBPF-C.

The P4 emitter produces a PISA-style program (parser elided, ingress control
with one ternary/exact table per segment plus saturating-add actions) and a
control-plane entry list. BMv2 is unavailable offline, so the entry list is
cross-validated by interpreting it with the reference TCAM semantics and
asserting bit-exact agreement with the compiled model (see tests).
"""

from repro.backends.p4 import emit_p4, emit_table_entries, P4Program
from repro.backends.ebpf import emit_ebpf

__all__ = ["emit_p4", "emit_table_entries", "P4Program", "emit_ebpf"]
