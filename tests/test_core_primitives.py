"""Tests for the primitive IR, function algebra, and lowering."""

import numpy as np
import pytest

from repro import nn
from repro.errors import CompilationError
from repro.core.primitives import (
    Affine, ElementwiseAffine, ElementwiseFunc, General,
    MapStep, SumReduceStep, PrimitiveProgram, compose, even_partition,
)
from repro.core.operators import lower_sequential


class TestFuncSpecs:
    def test_elementwise_affine(self):
        f = ElementwiseAffine(scale=[2.0, 3.0], shift=[1.0, -1.0])
        np.testing.assert_allclose(f(np.array([[1.0, 1.0]])), [[3.0, 2.0]])

    def test_elementwise_affine_slice(self):
        f = ElementwiseAffine(scale=[2.0, 3.0, 4.0], shift=[0.0, 1.0, 2.0])
        g = f.slice(1, 3)
        np.testing.assert_allclose(g(np.array([[1.0, 1.0]])), [[4.0, 6.0]])

    def test_affine(self):
        f = Affine(matrix=np.array([[1.0], [2.0]]), bias=np.array([0.5]))
        np.testing.assert_allclose(f(np.array([[1.0, 1.0]])), [[3.5]])

    def test_affine_not_sliceable(self):
        f = Affine(matrix=np.eye(2), bias=np.zeros(2))
        with pytest.raises(CompilationError):
            f.slice(0, 1)

    def test_elementwise_func(self):
        f = ElementwiseFunc(lambda v: np.maximum(v, 0), 3, name="relu")
        np.testing.assert_allclose(f(np.array([[-1.0, 0.0, 2.0]])), [[0, 0, 2]])


class TestCompose:
    def test_affine_affine(self):
        f = Affine(np.array([[2.0]]), np.array([1.0]))
        g = Affine(np.array([[3.0]]), np.array([-1.0]))
        h = compose(f, g)
        assert isinstance(h, Affine)
        np.testing.assert_allclose(h(np.array([[1.0]])), [[8.0]])  # 3*(2*1+1)-1

    def test_ew_affine_then_affine(self):
        f = ElementwiseAffine([2.0, 1.0], [0.0, 1.0])
        g = Affine(np.array([[1.0], [1.0]]), np.array([0.0]))
        h = compose(f, g)
        assert isinstance(h, Affine)
        np.testing.assert_allclose(h(np.array([[1.0, 1.0]])), [[4.0]])  # 2+2

    def test_affine_then_ew_affine(self):
        f = Affine(np.array([[1.0, 0.0], [0.0, 1.0]]), np.array([1.0, 1.0]))
        g = ElementwiseAffine([2.0, 3.0], [0.0, 0.0])
        h = compose(f, g)
        assert isinstance(h, Affine)
        np.testing.assert_allclose(h(np.array([[1.0, 1.0]])), [[4.0, 6.0]])

    def test_ew_ew(self):
        f = ElementwiseAffine([2.0], [1.0])
        g = ElementwiseAffine([3.0], [0.0])
        h = compose(f, g)
        assert isinstance(h, ElementwiseAffine)
        np.testing.assert_allclose(h(np.array([[1.0]])), [[9.0]])

    def test_nonlinear_gives_general(self):
        f = Affine(np.array([[1.0]]), np.array([0.0]))
        g = ElementwiseFunc(lambda v: np.maximum(v, 0), 1)
        h = compose(f, g)
        assert isinstance(h, General)
        np.testing.assert_allclose(h(np.array([[-2.0]])), [[0.0]])

    def test_dim_mismatch(self):
        f = Affine(np.ones((2, 3)), np.zeros(3))
        g = Affine(np.ones((2, 1)), np.zeros(1))
        with pytest.raises(CompilationError):
            compose(f, g)

    def test_composition_matches_sequential_eval(self):
        rng = np.random.default_rng(0)
        f = Affine(rng.normal(size=(4, 3)), rng.normal(size=3))
        g = ElementwiseAffine(rng.normal(size=3), rng.normal(size=3))
        x = rng.normal(size=(10, 4))
        np.testing.assert_allclose(compose(f, g)(x), g(f(x)), atol=1e-12)


class TestSteps:
    def test_even_partition(self):
        assert even_partition(7, 3) == [(0, 3), (3, 6), (6, 7)]

    def test_even_partition_invalid(self):
        with pytest.raises(ValueError):
            even_partition(4, 0)

    def test_map_step_apply(self):
        step = MapStep(partition=[(0, 1), (1, 2)],
                       fns=[ElementwiseAffine([2.0], [0.0]),
                            ElementwiseAffine([3.0], [0.0])])
        np.testing.assert_allclose(step.apply(np.array([[1.0, 1.0]])), [[2.0, 3.0]])

    def test_map_step_dim_check(self):
        with pytest.raises(CompilationError):
            MapStep(partition=[(0, 2)], fns=[ElementwiseAffine([1.0], [0.0])])

    def test_sum_reduce(self):
        step = SumReduceStep(n_segments=2, seg_dim=2)
        out = step.apply(np.array([[1.0, 2.0, 10.0, 20.0]]))
        np.testing.assert_allclose(out, [[11.0, 22.0]])

    def test_program_matmul_partition_equivalence(self):
        """Partition + Map + SumReduce == the direct MatMul."""
        rng = np.random.default_rng(1)
        w = rng.normal(size=(6, 4))
        b = rng.normal(size=4)
        partition = even_partition(6, 2)
        fns = [Affine(w[s:e], b / len(partition)) for s, e in partition]
        program = PrimitiveProgram(
            input_dim=6,
            steps=[MapStep(partition, fns), SumReduceStep(3, 4)])
        program.validate()
        x = rng.normal(size=(5, 6))
        np.testing.assert_allclose(program.evaluate(x), x @ w + b, atol=1e-12)

    def test_program_validate_gap(self):
        program = PrimitiveProgram(
            input_dim=4,
            steps=[MapStep([(0, 1), (2, 4)],
                           [ElementwiseAffine([1.0], [0.0]),
                            ElementwiseAffine([1.0, 1.0], [0.0, 0.0])])])
        with pytest.raises(CompilationError):
            program.validate()

    def test_num_map_steps(self):
        program = PrimitiveProgram(
            input_dim=2,
            steps=[MapStep([(0, 2)], [ElementwiseAffine([1.0, 1.0], [0.0, 0.0])]),
                   MapStep([(0, 2)], [ElementwiseAffine([2.0, 2.0], [0.0, 0.0])])])
        assert program.num_map_steps == 2


class TestLowering:
    def _mlp(self, in_dim=8, hidden=6, out=3):
        return nn.Sequential(
            nn.BatchNorm1d(in_dim),
            nn.Linear(in_dim, hidden, rng=0),
            nn.ReLU(),
            nn.BatchNorm1d(hidden),
            nn.Linear(hidden, out, rng=1),
        )

    def test_lowered_program_matches_model(self):
        model = self._mlp()
        rng = np.random.default_rng(2)
        # Warm BN running stats, then eval.
        model.train_mode(True)
        for _ in range(5):
            model.forward(rng.normal(size=(32, 8)))
        model.eval_mode()
        program = lower_sequential(model, input_dim=8, input_segment_dim=2)
        x = rng.normal(size=(10, 8))
        np.testing.assert_allclose(program.evaluate(x), model.forward(x), atol=1e-9)

    def test_lowering_counts(self):
        model = self._mlp()
        model.eval_mode()
        program = lower_sequential(model, input_dim=8, input_segment_dim=2)
        # BN, FC(+SR), ReLU, BN, FC = 5 map steps.
        assert program.num_map_steps == 5

    def test_softmax_tail_dropped(self):
        model = nn.Sequential(nn.Linear(4, 2, rng=0), nn.Softmax())
        model.eval_mode()
        program = lower_sequential(model, input_dim=4, input_segment_dim=2)
        rng = np.random.default_rng(3)
        x = rng.normal(size=(6, 4))
        scores = program.evaluate(x)
        np.testing.assert_array_equal(np.argmax(scores, axis=1),
                                      np.argmax(model.forward(x), axis=1))

    def test_unsupported_layer_raises(self):
        model = nn.Sequential(nn.Conv1d(1, 1, 2, rng=0))
        with pytest.raises(CompilationError):
            lower_sequential(model, input_dim=4)
