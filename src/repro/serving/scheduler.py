"""Batch scheduling: cut a time-ordered trace into flushable batches.

A line-rate serving layer cannot wait forever to fill a batch: a batch is
flushed either when it reaches ``batch_size`` packets (*batch-full*) or when
the oldest buffered packet has waited ``timeout`` seconds of trace time
(*timeout*) — the same full-or-timeout discipline batching NIC drivers and
inference servers use. :class:`BatchScheduler` computes those flush points
for an offline trace replay as half-open index spans.

Usage::

    from repro.serving import BatchScheduler

    sched = BatchScheduler(batch_size=256, timeout=0.050)
    ts = trace.packet_columns()["ts"]
    spans = sched.spans(ts)                       # [(0, 256), (256, 311), ...]
    decisions = runtime.process_trace(trace, spans=spans)

Flush points never change *what* is decided — per-flow state evolves the
same way no matter where the trace is cut (asserted by the serving tests) —
they only trade batch amortization against decision latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class FlushStats:
    """Why batches were flushed during the last :meth:`BatchScheduler.spans`."""

    full: int = 0        # reached batch_size
    timeout: int = 0     # oldest buffered packet waited `timeout` trace-seconds
    tail: int = 0        # end of trace drained a partial batch

    @property
    def total(self) -> int:
        return self.full + self.timeout + self.tail

    def merge(self, other: "FlushStats") -> None:
        """Accumulate another run's counts (e.g. across dispatcher shards)."""
        self.full += other.full
        self.timeout += other.timeout
        self.tail += other.tail


@dataclass
class BatchScheduler:
    """Flush-on-full-or-timeout batch boundaries for trace replay.

    ``timeout`` is in *trace time* (seconds between packet timestamps), not
    wall-clock time; ``None`` disables the timeout so only batch-full and
    end-of-trace flush.
    """

    batch_size: int = 256
    timeout: float | None = None
    stats: FlushStats = field(default_factory=FlushStats)

    def __post_init__(self):
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.timeout is not None and self.timeout < 0:
            raise ValueError(f"timeout must be >= 0, got {self.timeout}")

    def spans(self, ts: np.ndarray) -> list[tuple[int, int]]:
        """Half-open (start, stop) batch spans covering the whole trace.

        ``ts`` must be the trace's nondecreasing per-packet timestamps.
        Resets and repopulates ``stats``.
        """
        ts = np.asarray(ts, dtype=np.float64)
        n = len(ts)
        self.stats = FlushStats()
        out: list[tuple[int, int]] = []
        i = 0
        while i < n:
            stop = min(i + self.batch_size, n)
            timed_out = False
            if self.timeout is not None:
                t_stop = int(np.searchsorted(ts, ts[i] + self.timeout, side="right"))
                t_stop = max(t_stop, i + 1)
                if t_stop < stop:
                    stop = t_stop
                    timed_out = True
            if timed_out:
                self.stats.timeout += 1
            elif stop - i == self.batch_size:
                self.stats.full += 1
            else:
                self.stats.tail += 1
            out.append((i, stop))
            i = stop
        return out
