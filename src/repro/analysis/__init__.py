"""``repro.analysis``: the static invariant wall.

An AST-based linter (stdlib-only) that enforces, at the line that would
break them, the contracts the dynamic test wall assumes: RNG discipline,
wall-clock-free decision paths, pickle-safe registry entries, lock-guarded
thread-shared state, shim-free internal callers, EngineConfig /
mirror-table coherence, and — via the interprocedural callgraph + dtype
dataflow layer — the columnar wire-format contract (schema drift, hidden
copies in zero-copy zones, silent dtype promotion). See
``docs/ARCHITECTURE.md`` ("Invariants & static analysis") for the rule
table and suppression syntax.

Run it::

    python -m repro.analysis src/ scripts/ benchmarks/
    python -m repro.analysis --style          # + line length / compile smoke
    python -m repro.analysis --explain columnar-schema
"""

from repro.analysis.callgraph import CallGraph, build_callgraph
from repro.analysis.core import (Finding, ProjectRule, Rule, analyze_paths,
                                 analyze_source)
from repro.analysis.dtypeflow import DtypeFlow, promote_dtype, summarize
from repro.analysis.rules import default_rules
from repro.analysis.style import check_style
from repro.analysis.wire import (ColumnarSchemaRule, DtypePromotionRule,
                                 HiddenCopyRule, load_schema)

__all__ = [
    "CallGraph",
    "ColumnarSchemaRule",
    "DtypeFlow",
    "DtypePromotionRule",
    "Finding",
    "HiddenCopyRule",
    "ProjectRule",
    "Rule",
    "analyze_paths",
    "analyze_source",
    "build_callgraph",
    "check_style",
    "default_rules",
    "load_schema",
    "promote_dtype",
    "summarize",
]
