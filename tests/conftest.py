"""Shared fixtures for the batched-runtime and serving tests."""

import numpy as np
import pytest

from repro import nn
from repro.core import PegasusCompiler, CompilerConfig
from repro.net import make_dataset


@pytest.fixture(scope="session")
def compiled16():
    """A small compiled 16-input 3-class model (fits both seq and stats views)."""
    rng = np.random.default_rng(0)
    model = nn.Sequential(nn.Linear(16, 8, rng=0), nn.ReLU(), nn.Linear(8, 3, rng=1))
    for p in model.parameters():
        p.data *= 0.1
    model.eval_mode()
    x = np.floor(rng.uniform(0, 255, size=(400, 16))).astype(np.int64)
    return PegasusCompiler(CompilerConfig(refine=False)).compile_sequential(model, x).compiled


@pytest.fixture(scope="session")
def replay_flows():
    """A small interleaved multi-flow trace workload (24 flows)."""
    return make_dataset("peerrush", flows_per_class=8, seed=0).flows
