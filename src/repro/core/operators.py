"""Lowering: trained NN layers -> DL operators -> primitive program.

Implements the paper's §5 mapping (Table 4): each inference-time layer
becomes Map / SumReduce primitives over a Partition of its input.

- *Element-wise transformations* (BN inference, bias, ReLU, tanh, sigmoid)
  become whole-vector elementwise MapSteps.
- *Weighted aggregation* (MatMul) partitions the input into segments, maps
  each segment to its partial product (weights folded into the function, as
  the paper notes parameters are inference-time constants), and SumReduces.
- A trailing Softmax is dropped: argmax(softmax(x)) == argmax(x), and the
  paper's switch pipelines compare class scores directly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CompilationError
from repro import nn
from repro.core.primitives import (
    Affine,
    ElementwiseAffine,
    ElementwiseFunc,
    MapStep,
    PrimitiveProgram,
    SumReduceStep,
    even_partition,
)


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def lower_linear(layer: nn.Linear, segment_dim: int | None) -> list:
    """Lower a fully connected layer to Map(+SumReduce) steps."""
    weight = layer.weight.data
    bias = layer.bias.data if layer.bias is not None else np.zeros(layer.out_features)
    in_dim, out_dim = weight.shape
    if segment_dim is None or in_dim <= segment_dim:
        return [MapStep(partition=[(0, in_dim)], fns=[Affine(weight, bias)])]
    partition = even_partition(in_dim, segment_dim)
    k = len(partition)
    fns = [Affine(weight[start:stop, :], bias / k) for start, stop in partition]
    return [MapStep(partition=partition, fns=fns),
            SumReduceStep(n_segments=k, seg_dim=out_dim)]


def lower_batchnorm(layer: nn.BatchNorm1d) -> list:
    scale, shift = layer.inference_scale_shift()
    return [MapStep(partition=[(0, scale.shape[0])],
                    fns=[ElementwiseAffine(scale, shift)])]


def lower_activation(layer, dim: int) -> list:
    if isinstance(layer, nn.ReLU):
        return [MapStep([(0, dim)], [ElementwiseFunc(_relu, dim, name="relu")])]
    if isinstance(layer, nn.Tanh):
        return [MapStep([(0, dim)], [ElementwiseFunc(np.tanh, dim, name="tanh")])]
    if isinstance(layer, nn.Sigmoid):
        return [MapStep([(0, dim)],
                        [ElementwiseFunc(lambda v: 1.0 / (1.0 + np.exp(-v)), dim,
                                         name="sigmoid")])]
    raise CompilationError(f"unsupported activation {type(layer).__name__}")


def lower_sequential(model: nn.Sequential, input_dim: int,
                     input_segment_dim: int | None = 2,
                     hidden_segment_dim: int | None = None) -> PrimitiveProgram:
    """Lower a dense Sequential (BN / Linear / activations) to primitives.

    ``input_segment_dim`` partitions the (wide) model input; hidden layers
    default to whole-vector Maps, which is what lets basic fusion collapse
    everything after the first SumReduce into one lookup (Fig. 5 ❶).
    """
    steps: list = []
    dim = input_dim
    first_linear_seen = False
    modules = list(model)
    for idx, layer in enumerate(modules):
        if isinstance(layer, nn.Linear):
            seg = hidden_segment_dim if first_linear_seen else input_segment_dim
            lowered = lower_linear(layer, seg)
            first_linear_seen = True
            dim = layer.out_features
        elif isinstance(layer, nn.BatchNorm1d):
            lowered = lower_batchnorm(layer)
        elif isinstance(layer, (nn.ReLU, nn.Tanh, nn.Sigmoid)):
            lowered = lower_activation(layer, dim)
        elif isinstance(layer, nn.Softmax):
            if idx != len(modules) - 1:
                raise CompilationError("Softmax only supported as the final layer")
            lowered = []  # argmax-preserving: dropped
        elif isinstance(layer, nn.Flatten):
            lowered = []
        else:
            raise CompilationError(
                f"cannot lower layer {type(layer).__name__}; "
                "use a model-specific pipeline for Conv/RNN/Embedding models")
        steps.extend(lowered)
    program = PrimitiveProgram(input_dim=input_dim, steps=steps)
    program.validate()
    return program
