"""Figure 8: AutoEncoder ROC/AUC against unknown attacks (trained on benign).

Paper's shape: high AUC for every malware family and near-perfect AUC for
the SSDP flood, on all three datasets.
"""

import numpy as np

from repro.eval.reporting import render_table
from repro.eval.runner import run_fig8
from repro.net import DATASET_NAMES, ATTACK_NAMES


def _run(scale):
    return run_fig8(flows_per_class=scale["flows_per_class"], seed=scale["seed"])


def test_fig8(benchmark, bench_scale):
    results = benchmark.pedantic(_run, args=(bench_scale,), rounds=1, iterations=1)
    rows = []
    for attack in ATTACK_NAMES:
        rows.append([attack] + [results[d][attack]["auc"] for d in DATASET_NAMES])
    print()
    print(render_table(["attack", *DATASET_NAMES], rows,
                       title="Figure 8 — AutoEncoder AUC per unknown attack"))

    aucs = np.array([[results[d][a]["auc"] for a in ATTACK_NAMES]
                     for d in DATASET_NAMES])
    # Unknown attacks are detectable well above chance everywhere...
    assert aucs.mean() > 0.8
    assert aucs.min() > 0.55
    # ...and the flood (distributionally farthest from benign) is easiest.
    flood = np.mean([results[d]["Flood"]["auc"] for d in DATASET_NAMES])
    assert flood > 0.9
    # ROC curves are valid curves.
    fpr, tpr = results[DATASET_NAMES[0]][ATTACK_NAMES[0]]["fpr"], \
        results[DATASET_NAMES[0]][ATTACK_NAMES[0]]["tpr"]
    assert (np.diff(fpr) >= 0).all() and (np.diff(tpr) >= 0).all()
