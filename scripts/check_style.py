"""Local style gate — a thin shim over ``python -m repro.analysis --style``.

Usage::

    python scripts/check_style.py [paths ...]

Historically this machine's CI approximation ran a line-length check and a
``compileall`` smoke as separate steps; both now live in
``repro.analysis.style`` so one command runs the full local gate (invariant
rules + line length + parse smoke). This wrapper only exists so muscle
memory and old CI snippets keep working — new callers should invoke
``python -m repro.analysis --style`` directly.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.cli import main    # noqa: E402  (path bootstrap first)

if __name__ == "__main__":
    sys.exit(main(["--style", *sys.argv[1:]]))
