"""The wire-format rules: schema drift, hidden copies, dtype promotion.

Three rules backed by the interprocedural layer (callgraph + dtypeflow),
all checking the columnar IPC contract declared in
``src/repro/dataplane/schema.py``:

- ``columnar-schema`` — every construction of a wire column (a dict-literal
  entry or ``cols["name"] = ...`` store whose key is a declared column, in
  a wire module) must carry exactly the declared dtype. The schema is read
  off the *AST* of ``schema.py`` — from the analyzed file set when present,
  else resolved on disk relative to the linted tree's own ``repro`` root
  (so temp copies lint against their own schema, and the mutation tests
  can inject drift into a copy).
- ``hidden-copy-on-hot-path`` — inside functions marked with a
  ``# reprolint: zone=zero-copy`` comment (on, or directly above, the
  ``def`` line), flag the allocation patterns that would silently break a
  preallocated shared-memory path: ``.astype`` without ``copy=False``,
  ``.tolist()``, ``np.concatenate``-family calls, ``pickle`` calls (the
  ring read/write functions of ``repro.serving.rings`` are zoned — a
  reintroduced pickle on the IPC path is a finding), fancy indexing, and
  per-packet Python list comprehensions.
- ``dtype-promotion`` — mixed int/float (and ``int64 x uint64``, which
  NumPy promotes to float64) arithmetic on arrays in the wire modules:
  the silent way an int64 column becomes float64 mid-pipeline.

Like every rule here, these run stdlib-only: ``schema.py`` is parsed,
never imported.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.analysis.core import FileContext, Finding, ProjectRule
from repro.analysis.dtypeflow import DtypeFlow, Hooks

SCHEMA_MODULE = "repro.dataplane.schema"
SCHEMA_RELPATH = Path("dataplane") / "schema.py"

#: Modules whose column constructions are held to the schema.
WIRE_MODULES = frozenset({
    "repro.net.traces",
    "repro.serving.dispatcher",
    "repro.serving.parallel",
    "repro.serving.rings",
})

ZONE_RE = re.compile(r"#\s*reprolint:\s*zone=([A-Za-z0-9_\-]+)")
ZERO_COPY = "zero-copy"

_COPYING_NUMPY_CALLS = frozenset({
    "numpy.concatenate", "numpy.hstack", "numpy.vstack", "numpy.stack",
    "numpy.append",
})

#: Serialization calls banned in zero-copy zones: a pickle on the ring
#: read/write path silently reintroduces the per-serve copy the
#: shared-memory dataplane exists to remove.
_PICKLE_CALLS = frozenset({
    "pickle.dumps", "pickle.loads", "pickle.dump", "pickle.load",
})


# ---------------------------------------------------------------------------
# schema loading (AST only)
# ---------------------------------------------------------------------------

def parse_schema_tree(tree: ast.Module) -> dict[str, dict] | None:
    """Column name -> {dtype, rank, nullable} from schema.py's AST.

    Reads the pure-literal ``ColumnSchema(...)`` declarations; returns None
    when no declaration parses (so callers can report rather than silently
    pass a tree with a gutted schema).
    """
    columns: dict[str, dict] = {}
    found = False
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and getattr(node.func, "id", getattr(node.func, "attr", ""))
                == "ColumnSchema" and len(node.args) >= 2
                and isinstance(node.args[1], ast.Dict)):
            continue
        for key_node, value_node in zip(node.args[1].keys,
                                        node.args[1].values):
            if not (isinstance(key_node, ast.Constant)
                    and isinstance(key_node.value, str)
                    and isinstance(value_node, ast.Call)
                    and value_node.args
                    and isinstance(value_node.args[0], ast.Constant)
                    and isinstance(value_node.args[0].value, str)):
                continue
            found = True
            rank = 1
            if len(value_node.args) > 1 \
                    and isinstance(value_node.args[1], ast.Constant) \
                    and isinstance(value_node.args[1].value, int):
                rank = value_node.args[1].value
            nullable = any(
                kw.arg == "nullable" and isinstance(kw.value, ast.Constant)
                and kw.value.value is True for kw in value_node.keywords)
            spec = {"dtype": value_node.args[0].value, "rank": rank,
                    "nullable": nullable}
            existing = columns.get(key_node.value)
            if existing is None:
                columns[key_node.value] = spec
    return columns if found else None


def _repro_root(path: Path) -> Path | None:
    """The directory of the *last* ``repro`` segment (temp-copy friendly)."""
    parts = list(path.parts)
    if "repro" not in parts:
        return None
    i = len(parts) - 1 - parts[::-1].index("repro")
    return Path(*parts[:i + 1])


def load_schema(contexts: list[FileContext]
                ) -> tuple[dict[str, dict] | None, str]:
    """(columns, origin) — from the analyzed set, else the tree on disk."""
    for ctx in contexts:
        if ctx.module == SCHEMA_MODULE:
            return parse_schema_tree(ctx.tree), ctx.display_path
    for ctx in contexts:
        root = _repro_root(ctx.path)
        if root is None:
            continue
        candidate = root / SCHEMA_RELPATH
        if candidate.is_file():
            try:
                tree = ast.parse(candidate.read_text(encoding="utf-8"))
            except (OSError, SyntaxError):
                return None, str(candidate)
            return parse_schema_tree(tree), str(candidate)
    return None, str(SCHEMA_RELPATH)


# ---------------------------------------------------------------------------
# shared dataflow pipeline (one per analyze_paths run)
# ---------------------------------------------------------------------------

class _Dataflow:
    def __init__(self, contexts: list[FileContext]):
        self.schema, self.schema_origin = load_schema(contexts)
        seeds = {name: spec["dtype"]
                 for name, spec in (self.schema or {}).items()}
        self.flow = DtypeFlow(contexts, schema=seeds)
        self.flow.compute(modules=WIRE_MODULES)


_CACHE: list = [None, None]              # [contexts identity, _Dataflow]


def dataflow_for(contexts: list[FileContext]) -> _Dataflow:
    """The shared per-run dataflow; all three rules reuse one fixpoint."""
    if _CACHE[0] is not contexts or _CACHE[1] is None:
        _CACHE[0] = contexts
        _CACHE[1] = _Dataflow(contexts)
    return _CACHE[1]


# ---------------------------------------------------------------------------
# columnar-schema
# ---------------------------------------------------------------------------

class _SchemaHooks(Hooks):
    def __init__(self, rule: "ColumnarSchemaRule", ctx: FileContext,
                 columns: dict[str, dict], seen: set[int]):
        self.rule = rule
        self.ctx = ctx
        self.columns = columns
        self.seen = seen

    def on_dict_item(self, key, value_av, key_node, value_node):
        self._check(key, value_av, value_node)

    def on_store(self, key, value_av, node):
        self._check(key, value_av, node)

    def _check(self, key: str, av: tuple, node: ast.AST) -> None:
        spec = self.columns.get(key)
        if spec is None or av[0] != "array" or av[1] is None:
            return                      # unknown dtypes never fire
        if av[1] != spec["dtype"] and id(node) not in self.seen:
            self.seen.add(id(node))
            self.ctx.report(
                node, self.rule.name,
                f"wire column '{key}' constructed as {av[1]}; the schema "
                f"(dataplane/schema.py) declares {spec['dtype']} — drift "
                f"here re-pickles or corrupts the IPC hot path")


class ColumnarSchemaRule(ProjectRule):
    name = "columnar-schema"
    description = ("every producer of a wire column (dict entries / "
                   "cols[...] stores in repro.net.traces and the serving "
                   "dispatchers) must construct exactly the dtype declared "
                   "in dataplane/schema.py")
    example = ("src/repro/serving/parallel.py:97: [columnar-schema] wire "
               "column 'seq' constructed as float64; the schema "
               "(dataplane/schema.py) declares int64 — drift here "
               "re-pickles or corrupts the IPC hot path")

    def check_project(self, contexts: list[FileContext]) -> list[Finding]:
        wire_ctxs = [c for c in contexts if c.module in WIRE_MODULES]
        if not wire_ctxs:
            return []
        df = dataflow_for(contexts)
        if not df.schema:
            wire_ctxs[0].report(
                wire_ctxs[0].tree, self.name,
                f"wire schema {df.schema_origin} is missing or declares no "
                f"columns; the columnar contract cannot be checked — "
                f"restore the ColumnSchema literals")
            return []
        seen: set[int] = set()
        for ctx in wire_ctxs:
            hooks = _SchemaHooks(self, ctx, df.schema, seen)
            for info in df.flow.graph.functions.values():
                if info.ctx is ctx:
                    df.flow.analyze(info, hooks=hooks)
        return []


# ---------------------------------------------------------------------------
# hidden-copy-on-hot-path
# ---------------------------------------------------------------------------

def zone_of(node: ast.AST, zone_lines: dict[int, str]) -> str | None:
    """The zone a function is marked with: a ``# reprolint: zone=`` comment
    on any signature line or the line directly above the ``def``."""
    body = getattr(node, "body", None)
    if not body:
        return None
    for line in range(node.lineno - 1, body[0].lineno):
        if line in zone_lines:
            return zone_lines[line]
    return None


class _FancyIndexHooks(Hooks):
    def __init__(self, on_fancy):
        self.on_fancy = on_fancy

    def on_subscript_load(self, node, recv_av, index_av):
        if index_av[0] == "array" or isinstance(node.slice, ast.List):
            self.on_fancy(node)


class HiddenCopyRule(ProjectRule):
    name = "hidden-copy-on-hot-path"
    description = ("functions marked '# reprolint: zone=zero-copy' must not "
                   "allocate per element: .astype without copy=False, "
                   ".tolist(), np.concatenate-family calls, pickle calls, "
                   "fancy indexing, and list comprehensions are findings "
                   "there")
    example = ("src/repro/serving/dispatcher.py:80: "
               "[hidden-copy-on-hot-path] .astype(...) without copy=False "
               "allocates a fresh array in zero-copy zone of "
               "'shard_hash_columns'")

    def check_project(self, contexts: list[FileContext]) -> list[Finding]:
        df = dataflow_for(contexts)
        for ctx in contexts:
            zone_lines = {
                lineno: match.group(1)
                for lineno, line in enumerate(ctx.source.splitlines(),
                                              start=1)
                if (match := ZONE_RE.search(line))
            }
            if not zone_lines:
                continue
            by_node = {id(info.node): info
                       for info in df.flow.graph.functions.values()
                       if info.ctx is ctx}
            reported: set[int] = set()
            for node in ast.walk(ctx.tree):
                if not isinstance(node, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                if zone_of(node, zone_lines) != ZERO_COPY:
                    continue
                where = f"zero-copy zone of '{node.name}'"
                self._walk_zone(ctx, node, where, reported)
                info = by_node.get(id(node))
                if info is not None:
                    def flag(sub, _where=where):
                        if id(sub) not in reported:
                            reported.add(id(sub))
                            ctx.report(sub, self.name,
                                       f"fancy indexing gathers into a "
                                       f"fresh array in {_where}; use "
                                       f"slices/views or a preallocated "
                                       f"scatter target")
                    df.flow.analyze(info, hooks=_FancyIndexHooks(flag))
        return []

    def _walk_zone(self, ctx: FileContext, func: ast.AST, where: str,
                   reported: set[int]) -> None:
        for node in ast.walk(func):
            if id(node) in reported:
                continue
            if isinstance(node, ast.ListComp):
                reported.add(id(node))
                ctx.report(node, self.name,
                           f"per-packet Python list comprehension "
                           f"allocates in {where}; keep the loop columnar")
            elif isinstance(node, ast.Call):
                msg = self._call_violation(ctx, node)
                if msg:
                    reported.add(id(node))
                    ctx.report(node, self.name, f"{msg} in {where}")

    def _call_violation(self, ctx: FileContext, node: ast.Call
                        ) -> str | None:
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr == "astype":
                for kw in node.keywords:
                    if kw.arg == "copy" \
                            and isinstance(kw.value, ast.Constant) \
                            and kw.value.value is False:
                        return None
                return (".astype(...) without copy=False allocates a "
                        "fresh array")
            if attr == "tolist":
                return ".tolist() round-trips the column through Python"
        resolved = ctx.resolve_call(node)
        if resolved in _COPYING_NUMPY_CALLS:
            short = resolved.replace("numpy.", "np.")
            return (f"{short}(...) concatenation copies every part; "
                    f"scatter into a preallocated array instead")
        if resolved in _PICKLE_CALLS:
            return (f"{resolved}(...) re-pickles the payload the "
                    f"shared-memory ring path exists to avoid")
        return None


# ---------------------------------------------------------------------------
# dtype-promotion
# ---------------------------------------------------------------------------

def _family(dtype: str | None) -> str | None:
    if dtype is None:
        return None
    if dtype.startswith("float"):
        return "float"
    if dtype.startswith(("int", "uint")):
        return "int"
    return None


class _PromotionHooks(Hooks):
    def __init__(self, rule: "DtypePromotionRule", ctx: FileContext,
                 seen: set[int]):
        self.rule = rule
        self.ctx = ctx
        self.seen = seen

    def on_binop(self, node, left_av, right_av):
        if id(node) in self.seen:
            return
        msg = self._violation(left_av, right_av)
        if msg:
            self.seen.add(id(node))
            self.ctx.report(node, self.rule.name, msg)

    @staticmethod
    def _violation(left: tuple, right: tuple) -> str | None:
        arrays = [av for av in (left, right) if av[0] == "array"]
        if not arrays or any(av[1] is None for av in arrays):
            return None
        if len(arrays) == 2:
            fams = {_family(av[1]) for av in arrays}
            if fams == {"int", "float"}:
                return ("mixed int/float array arithmetic "
                        f"({arrays[0][1]} x {arrays[1][1]}) silently "
                        f"promotes a wire column to float64; convert "
                        f"explicitly at a declared boundary")
            kinds = {av[1] for av in arrays}
            if "uint64" in kinds and any(k.startswith("int")
                                         for k in kinds):
                return ("int64 x uint64 arithmetic promotes to float64 "
                        "(uint64 has no signed superset); keep both "
                        "operands one unsigned dtype")
            return None
        scalar = left if right in arrays else right
        if scalar == ("float",) and _family(arrays[0][1]) == "int":
            return (f"python float scalar promotes this "
                    f"{arrays[0][1]} wire column to float64; scale with "
                    f"integer arithmetic or convert explicitly")
        return None


class DtypePromotionRule(ProjectRule):
    name = "dtype-promotion"
    description = ("no mixed int/float (or int64 x uint64) array "
                   "arithmetic in the wire modules — NumPy promotes those "
                   "to float64, silently breaking the declared column "
                   "dtypes")
    example = ("src/repro/serving/dispatcher.py:88: [dtype-promotion] "
               "python float scalar promotes this int64 wire column to "
               "float64; scale with integer arithmetic or convert "
               "explicitly")

    def check_project(self, contexts: list[FileContext]) -> list[Finding]:
        wire_ctxs = [c for c in contexts if c.module in WIRE_MODULES]
        if not wire_ctxs:
            return []
        df = dataflow_for(contexts)
        seen: set[int] = set()
        for ctx in wire_ctxs:
            hooks = _PromotionHooks(self, ctx, seen)
            for info in df.flow.graph.functions.values():
                if info.ctx is ctx:
                    df.flow.analyze(info, hooks=hooks)
        return []
