"""Ablation: concurrent-flow capacity vs per-flow state (paper §7.3).

Per-flow registers are the scarce stateful resource: a model storing B bits
per flow supports SRAM/B concurrent flows before eviction. This bench
replays the same trace through runtimes with shrinking register capacity
and measures how eviction (state loss mid-flow) degrades packet-level
accuracy — the pressure that motivates CNN-L's 28-44 bit layouts.
"""

import numpy as np

from repro.dataplane.runtime import WindowedClassifierRuntime
from repro.eval.reporting import render_table
from repro.eval.runner import train_and_eval_model
from repro.net import make_dataset


def _run(scale):
    flows_per_class = scale["flows_per_class"]
    seed = scale["seed"]
    row = train_and_eval_model("MLP-B", "peerrush", flows_per_class, seed)
    model = row["_model"]
    ds = make_dataset("peerrush", flows_per_class=flows_per_class, seed=seed)
    _train, _val, test_flows = ds.split(rng=seed)

    out = []
    for capacity in (1_000_000, 64, 16, 4):
        runtime = WindowedClassifierRuntime(model.compiled, feature_mode="stats",
                                            capacity=capacity)
        decisions = runtime.process_flows(test_flows)
        acc = float(np.mean([d.predicted == d.flow_label for d in decisions])) \
            if decisions else 0.0
        out.append({
            "capacity": capacity,
            "decisions": len(decisions),
            "evictions": runtime.state.evictions,
            "accuracy": acc,
            "sram_bits_needed": runtime.bits_per_flow * capacity,
        })
    return out


def test_ablation_flow_capacity(benchmark, bench_scale):
    rows = benchmark.pedantic(_run, args=(bench_scale,), rounds=1, iterations=1)
    print()
    print(render_table(
        ["capacity", "decisions", "evictions", "accuracy"],
        [[r["capacity"], r["decisions"], r["evictions"], r["accuracy"]]
         for r in rows],
        title="Ablation — concurrent-flow register capacity"))

    full, *_rest, tiny = rows
    # Ample capacity: no evictions. Tiny capacity: constant eviction churn
    # that suppresses decisions (windows never fill) and/or accuracy.
    assert full["evictions"] == 0
    assert tiny["evictions"] > 0
    assert tiny["decisions"] <= full["decisions"]
