"""Mapping-table materialization: primitive programs -> integer lookup layers.

This is where Pegasus's design ❸ lands in code: mapping tables store results
precomputed **with full-precision weights**, while everything that flows
between tables is a **fixed-point integer**. Each MapStep segment becomes a
:class:`SegmentTable` — either *exact* (a direct-indexed SRAM table, when the
segment is a single unit of at most 8 bits, 2^8 entries) or *fuzzy* (a
clustering tree realized as TCAM range rules whose leaf points at a
precomputed result vector).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CompilationError, ConfigError, ShapeError
from repro.core.fuzzy import FuzzyTree
from repro.core.primitives import MapStep, PrimitiveProgram, SumReduceStep
from repro.utils.fixed_point import QFormat, choose_qformat


# Lookup execution backends of a compiled model. "index" answers every table
# by exact fancy indexing (exact tables) / tree walk (fuzzy tables); "tcam"
# answers fuzzy tables through the vectorized prioritized-TCAM emulation in
# :mod:`repro.dataplane.tcam` — bit-identical by construction, but executing
# the very (value, mask, priority) entries the hardware would hold. Exact
# tables are direct-indexed SRAM on the switch too, so both backends index
# them.
LOOKUP_BACKENDS = ("index", "tcam")


def _check_backend(lookup_backend: str) -> None:
    if lookup_backend not in LOOKUP_BACKENDS:
        raise ConfigError("lookup_backend", lookup_backend,
                          allowed=LOOKUP_BACKENDS)


@dataclass
class MaterializeConfig:
    """Knobs for table construction."""

    fuzzy_leaves: int = 16       # clusters per fuzzy segment table
    act_bits: int = 8            # fixed-point width of activations (paper: 2^8-entry queries)
    exact_max_bits: int = 8      # exact tables allowed up to this key width
    calibration_margin: float = 1.05  # headroom when choosing QFormats


@dataclass
class SegmentTable:
    """One Map segment realized as a dataplane table."""

    segment: tuple[int, int]
    kind: str                    # "exact" | "fuzzy"
    values_int: np.ndarray       # (n_entries, out_dim) stored results
    out_format: QFormat
    in_bits: int                 # key width per input unit
    in_signed: bool = False      # signed keys use excess-K TCAM encoding
    tree: FuzzyTree | None = None
    exact_lo: int = 0            # exact tables index by (x - exact_lo)
    # Lazily compiled TCAM form of a fuzzy table (repro.dataplane.tcam),
    # cached so serving pays compilation once per table, not per batch.
    _tcam: object = field(default=None, init=False, repr=False, compare=False)

    @property
    def out_dim(self) -> int:
        return self.values_int.shape[1]

    @property
    def n_entries(self) -> int:
        return self.values_int.shape[0]

    def lookup(self, x_seg: np.ndarray,
               lookup_backend: str = "index") -> np.ndarray:
        """Table lookup for a batch of integer segment inputs (N, d)."""
        _check_backend(lookup_backend)
        if self.kind == "exact":
            # Direct-indexed SRAM on the hardware under either backend.
            idx = np.clip(x_seg[:, 0] - self.exact_lo, 0, self.n_entries - 1)
            return self.values_int[idx.astype(np.int64)]
        assert self.tree is not None
        if lookup_backend == "tcam":
            return self.values_int[self.tcam_indices(x_seg)]
        return self.values_int[self.tree.predict_index(x_seg)]

    def tcam_segment(self):
        """The cached prioritized-TCAM form of this (fuzzy) table."""
        if self._tcam is None:
            # Imported lazily: core stays importable without the dataplane.
            from repro.dataplane.tcam import compile_segment_table
            self._tcam = compile_segment_table(self)
        return self._tcam

    def tcam_indices(self, x_seg: np.ndarray) -> np.ndarray:
        """Fuzzy indices via masked-compare TCAM emulation (bit-identical
        to :meth:`fuzzy_indices` for the integer keys the dataplane sees)."""
        return self.tcam_segment().lookup_indices(x_seg)

    def fuzzy_indices(self, x_seg: np.ndarray) -> np.ndarray:
        """The raw fuzzy index (used when per-flow state stores indexes)."""
        if self.kind != "fuzzy":
            raise CompilationError("only fuzzy tables have fuzzy indices")
        return self.tree.predict_index(x_seg)

    # -- resource accounting -------------------------------------------------

    def sram_bits(self) -> int:
        """Action-data storage: every entry's result vector."""
        return self.n_entries * self.out_dim * self.out_format.total_bits

    def tcam_bits(self) -> int:
        """Ternary match storage (value+mask per entry) for fuzzy tables."""
        if self.kind != "fuzzy":
            return 0
        d = self.segment[1] - self.segment[0]
        key_width = d * self.in_bits
        entries = self.tree.tcam_entries(key_bits=self.in_bits, signed=self.in_signed)
        return entries * 2 * key_width

    def bus_bits(self) -> int:
        """Action-data bus transfer per lookup."""
        return self.out_dim * self.out_format.total_bits


@dataclass
class LookupLayer:
    """One fused Map(+SumReduce) round: parallel segment lookups, then sum/concat."""

    tables: list[SegmentTable]
    sum_reduce: bool
    out_format: QFormat

    @property
    def out_dim(self) -> int:
        if self.sum_reduce:
            return self.tables[0].out_dim
        return sum(t.out_dim for t in self.tables)

    @property
    def in_dim(self) -> int:
        return max(t.segment[1] for t in self.tables)

    def forward_int(self, x_int: np.ndarray,
                    lookup_backend: str = "index") -> np.ndarray:
        """Integer-domain forward pass (bit-exact with the switch pipeline)."""
        outs = [t.lookup(x_int[:, t.segment[0]:t.segment[1]],
                         lookup_backend=lookup_backend) for t in self.tables]
        if self.sum_reduce:
            acc = np.zeros_like(outs[0], dtype=np.int64)
            for o in outs:
                acc += o
            # The pipeline's accumulator saturates at the activation width.
            return np.clip(acc, self.out_format.int_min, self.out_format.int_max)
        return np.concatenate(outs, axis=1)

    def sram_bits(self) -> int:
        return sum(t.sram_bits() for t in self.tables)

    def tcam_bits(self) -> int:
        return sum(t.tcam_bits() for t in self.tables)

    def bus_bits(self) -> int:
        return sum(t.bus_bits() for t in self.tables)

    @property
    def n_lookups(self) -> int:
        return len(self.tables)


@dataclass
class CompiledModel:
    """A Pegasus model compiled to lookup layers, executable on integers."""

    input_dim: int
    layers: list[LookupLayer] = field(default_factory=list)
    input_bits: int = 8
    name: str = "pegasus"

    @property
    def out_format(self) -> QFormat:
        return self.layers[-1].out_format

    def forward_int(self, x_int: np.ndarray,
                    lookup_backend: str = "index") -> np.ndarray:
        """Integer forward pass over a batch of any size.

        Every op is a table gather or a saturating integer add, so results
        are *batch-size invariant*: evaluating N rows at once is bit-equal
        to evaluating them one at a time — the property that lets the
        batched runtimes replace per-packet calls with one call per batch.
        The empty batch (0, input_dim) is explicitly supported.

        ``lookup_backend`` selects how fuzzy tables are answered: ``"index"``
        walks the clustering tree; ``"tcam"`` runs the vectorized
        prioritized-TCAM emulation (:mod:`repro.dataplane.tcam`) over the
        packed (value, mask, priority) entries the switch would hold. The
        two are bit-identical for every integer input (asserted by
        ``tests/test_dataplane_tcam.py``).
        """
        _check_backend(lookup_backend)
        x = np.asarray(x_int, dtype=np.int64)
        if x.ndim == 1:
            x = x[None, :]
        if x.ndim != 2:
            raise ShapeError(f"expected a (N, {self.input_dim}) batch, got shape {x.shape}")
        if x.shape[1] != self.input_dim:
            raise ShapeError(f"expected input dim {self.input_dim}, got {x.shape[1]}")
        if x.shape[0] == 0:
            out_dim = self.layers[-1].out_dim if self.layers else self.input_dim
            return np.zeros((0, out_dim), dtype=np.int64)
        for layer in self.layers:
            x = layer.forward_int(x, lookup_backend=lookup_backend)
        return x

    def predict_scores(self, x_int: np.ndarray,
                       lookup_backend: str = "index") -> np.ndarray:
        """Dequantized final-layer scores."""
        return self.out_format.dequantize(
            self.forward_int(x_int, lookup_backend=lookup_backend))

    def predict(self, x_int: np.ndarray,
                lookup_backend: str = "index") -> np.ndarray:
        """Argmax class decision, as the switch's final compare tree does."""
        return np.argmax(self.forward_int(x_int, lookup_backend=lookup_backend),
                         axis=1)

    @property
    def num_lookup_rounds(self) -> int:
        return len(self.layers)

    @property
    def num_tables(self) -> int:
        return sum(layer.n_lookups for layer in self.layers)

    def sram_bits(self) -> int:
        return sum(layer.sram_bits() for layer in self.layers)

    def tcam_bits(self) -> int:
        return sum(layer.tcam_bits() for layer in self.layers)

    def bus_bits(self) -> int:
        return max((layer.bus_bits() for layer in self.layers), default=0)


def _materialize_map(step: MapStep, sum_reduce: bool, calib_int: np.ndarray,
                     in_format: QFormat, cfg: MaterializeConfig) -> LookupLayer:
    """Build the tables of one Map(+SumReduce) round from calibration data."""
    calib_float = in_format.dequantize(calib_int)

    # Pass 1: full-precision outputs to calibrate the output format. The
    # format must hold both each partial result and (if reducing) their sum.
    partials = [fn(calib_float[:, start:stop])
                for (start, stop), fn in zip(step.partition, step.fns)]
    samples = np.concatenate([p.ravel() for p in partials])
    if sum_reduce:
        total = np.sum(np.stack(partials), axis=0)
        samples = np.concatenate([samples, total.ravel()])
    out_format = choose_qformat(samples, cfg.act_bits, margin=cfg.calibration_margin)

    tables: list[SegmentTable] = []
    for (start, stop), fn in zip(step.partition, step.fns):
        d = stop - start
        seg_int = calib_int[:, start:stop]
        if d == 1 and in_format.total_bits <= cfg.exact_max_bits:
            lo = in_format.int_min
            n_entries = 1 << in_format.total_bits
            keys = np.arange(lo, lo + n_entries, dtype=np.int64)[:, None]
            values = fn(in_format.dequantize(keys))
            tables.append(SegmentTable(
                segment=(start, stop), kind="exact",
                values_int=out_format.quantize(values),
                out_format=out_format, in_bits=in_format.total_bits,
                in_signed=in_format.signed, exact_lo=lo))
        else:
            tree = FuzzyTree.fit(seg_int.astype(np.float64), n_leaves=cfg.fuzzy_leaves)
            values = fn(in_format.dequantize(tree.centroids))
            tables.append(SegmentTable(
                segment=(start, stop), kind="fuzzy",
                values_int=out_format.quantize(values),
                out_format=out_format, in_bits=in_format.total_bits,
                in_signed=in_format.signed, tree=tree))
    return LookupLayer(tables=tables, sum_reduce=sum_reduce, out_format=out_format)


def materialize(program: PrimitiveProgram, calib_int: np.ndarray,
                cfg: MaterializeConfig | None = None,
                input_bits: int = 8, input_frac_bits: int = 0,
                input_signed: bool = False,
                name: str = "pegasus") -> CompiledModel:
    """Compile a primitive program into an integer :class:`CompiledModel`.

    ``calib_int`` is the training-set inputs in the integer domain the
    dataplane sees (e.g. raw uint8 feature buckets). Each Map round's fuzzy
    trees are fitted on the integer activations flowing into that round,
    matching the paper's i.i.d. parameter-learning assumption.
    """
    cfg = cfg or MaterializeConfig()
    program.validate()
    calib_int = np.asarray(calib_int, dtype=np.int64)
    if calib_int.ndim != 2 or calib_int.shape[1] != program.input_dim:
        raise ShapeError(
            f"calibration data must be (N, {program.input_dim}), got {calib_int.shape}")

    in_format = QFormat(input_bits, input_frac_bits, signed=input_signed)
    model = CompiledModel(input_dim=program.input_dim, input_bits=input_bits, name=name)

    steps = list(program.steps)
    i = 0
    current_int = calib_int
    current_format = in_format
    while i < len(steps):
        step = steps[i]
        if not isinstance(step, MapStep):
            raise CompilationError(
                "program must alternate Map(+SumReduce); run fuse_basic first "
                f"(found leading {type(step).__name__})")
        sum_reduce = i + 1 < len(steps) and isinstance(steps[i + 1], SumReduceStep)
        layer = _materialize_map(step, sum_reduce, current_int, current_format, cfg)
        model.layers.append(layer)
        current_int = layer.forward_int(current_int)
        current_format = layer.out_format
        i += 2 if sum_reduce else 1
    return model
