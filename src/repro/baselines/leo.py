"""Leo: decision-tree traffic classification in the dataplane (NSDI'24).

Leo maps a CART tree onto MAT rules: every leaf's axis-aligned box expands
into TCAM range rules (the same multi-field expansion Pegasus uses for its
fuzzy trees). Leo is exact — no centroids — but its model family is the
tree itself, which is the accuracy limitation Pegasus's MLP/CNN models beat
on oblique or payload-driven tasks.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.tree import DecisionTree
from repro.core.crc import range_to_prefixes
from repro.dataplane.registers import FlowStateLayout, RegisterField
from repro.models.base import TrafficModel
from repro.net.features import N_STAT_FEATURES, SEQ_WINDOW


class LeoModel(TrafficModel):
    name = "Leo"
    feature_view = "stats"

    def __init__(self, n_classes: int, seed: int = 0, max_nodes: int = 1024):
        super().__init__(n_classes, seed)
        self.tree = DecisionTree(max_nodes=max_nodes)

    def train(self, views: dict[str, np.ndarray]) -> None:
        self.tree.fit(self.view(views, "stats").astype(np.float64),
                      self.view(views, "y"))
        self.trained = True

    def predict_float(self, views: dict[str, np.ndarray]) -> np.ndarray:
        self._require_trained()
        return self.tree.predict(self.view(views, "stats").astype(np.float64))

    def compile_dataplane(self, views: dict[str, np.ndarray]) -> None:
        # Leo's dataplane decision is exact, so compiled == float.
        self._require_trained()
        self.compiled = self.tree

    def predict_dataplane(self, views: dict[str, np.ndarray]) -> np.ndarray:
        self._require_compiled()
        return self.tree.predict(self.view(views, "stats").astype(np.float64))

    def model_size_kbits(self) -> float:
        # Tree nodes store (feature id, 8-bit threshold, child pointers).
        return self.tree.n_nodes * 32 / 1000

    def input_scale_bits(self) -> int:
        return N_STAT_FEATURES * 8

    def flow_layout(self) -> FlowStateLayout:
        return FlowStateLayout(fields=[
            RegisterField("prev_ts", 16),
            RegisterField("max_len", 8), RegisterField("min_len", 8),
            RegisterField("max_ipd", 8), RegisterField("min_ipd", 8),
            RegisterField("count", 8),
            RegisterField("len_hist", 8, count=max(SEQ_WINDOW - 6, 0)),
            RegisterField("ipd_hist", 8, count=1),
        ])  # 80 bits/flow

    # -- resource accounting (Table 6) ---------------------------------------

    def tcam_entries(self) -> int:
        """Ternary entries to realize the tree: the cheaper of the flat
        leaf-box expansion and Leo's level-wise (one range match per tree
        level) layout."""
        self._require_trained()
        boxes = self.tree.leaf_boxes(dim=N_STAT_FEATURES)
        flat = 0
        for box in boxes:
            product = 1
            for b_lo, b_hi in box:
                lo_i = int(np.clip(np.ceil(b_lo), 0, 255))
                hi_i = int(np.clip(np.floor(b_hi), 0, 255))
                if lo_i > hi_i:
                    product = 0
                    break
                product *= len(range_to_prefixes(lo_i, hi_i, 8))
            flat += product

        def levelwise(node) -> int:
            if isinstance(node, int):
                return 0
            t = int(np.clip(np.floor(node.threshold), 0, 255))
            return (len(range_to_prefixes(0, t, 8)) + 1
                    + levelwise(node.left) + levelwise(node.right))

        return min(flat, levelwise(self.tree.root))

    def tcam_bits(self) -> int:
        return self.tcam_entries() * 2 * N_STAT_FEATURES * 8

    def sram_bits(self) -> int:
        # Leaf -> class action data only.
        return self.tree.n_leaves * 8

    def bus_bits(self) -> int:
        return 8  # just the class id
