"""The Pegasus primitive IR: Partition, Map, SumReduce (paper Table 3).

A model is lowered to a :class:`PrimitiveProgram` — a sequence of steps, each
either a :class:`MapStep` (apply per-segment functions to a partition of the
current vector) or a :class:`SumReduceStep` (element-wise sum of the segment
results). Partition is represented *inside* each MapStep as its list of
segment slices, mirroring the paper's syntax where ``Partition`` feeds
directly into ``Map``.

Map functions carry algebraic structure (:class:`FuncSpec` subclasses) so the
fusion pass can compose affine pieces analytically and arbitrary pieces
functionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import CompilationError, ShapeError

Segment = tuple[int, int]  # half-open [start, stop) over the current vector


# ---------------------------------------------------------------------------
# Function specs: what a Map primitive computes on one segment.
# ---------------------------------------------------------------------------

class FuncSpec:
    """A vector function on one segment, with composition metadata."""

    in_dim: int
    out_dim: int

    @property
    def is_affine(self) -> bool:
        return False

    @property
    def is_elementwise(self) -> bool:
        return False

    def __call__(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def slice(self, start: int, stop: int) -> "FuncSpec":
        """Restrict an elementwise function to a sub-range of its elements."""
        raise CompilationError(f"{type(self).__name__} cannot be sliced")


@dataclass
class ElementwiseAffine(FuncSpec):
    """f(x) = scale * x + shift, elementwise (BN inference, bias, rescale)."""

    scale: np.ndarray
    shift: np.ndarray

    def __post_init__(self):
        self.scale = np.atleast_1d(np.asarray(self.scale, dtype=np.float64))
        self.shift = np.atleast_1d(np.asarray(self.shift, dtype=np.float64))
        if self.scale.shape != self.shift.shape:
            raise ShapeError("scale and shift must have the same shape")
        self.in_dim = self.out_dim = self.scale.shape[0]

    @property
    def is_affine(self) -> bool:
        return True

    @property
    def is_elementwise(self) -> bool:
        return True

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return x * self.scale + self.shift

    def slice(self, start: int, stop: int) -> "ElementwiseAffine":
        return ElementwiseAffine(self.scale[start:stop], self.shift[start:stop])


@dataclass
class ElementwiseFunc(FuncSpec):
    """A nonlinear elementwise function (ReLU, tanh, sigmoid...)."""

    fn: Callable[[np.ndarray], np.ndarray]
    dim: int
    name: str = "ew"

    def __post_init__(self):
        self.in_dim = self.out_dim = self.dim

    @property
    def is_elementwise(self) -> bool:
        return True

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.fn(x)

    def slice(self, start: int, stop: int) -> "ElementwiseFunc":
        return ElementwiseFunc(self.fn, stop - start, name=self.name)


@dataclass
class Affine(FuncSpec):
    """f(x) = x @ matrix + bias — a MatMul partial product plus bias share."""

    matrix: np.ndarray
    bias: np.ndarray

    def __post_init__(self):
        self.matrix = np.asarray(self.matrix, dtype=np.float64)
        self.bias = np.asarray(self.bias, dtype=np.float64)
        if self.matrix.ndim != 2 or self.bias.shape != (self.matrix.shape[1],):
            raise ShapeError(
                f"Affine expects matrix (d_in, d_out) and bias (d_out,), got "
                f"{self.matrix.shape} / {self.bias.shape}")
        self.in_dim, self.out_dim = self.matrix.shape

    @property
    def is_affine(self) -> bool:
        return True

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return x @ self.matrix + self.bias


@dataclass
class General(FuncSpec):
    """An arbitrary composed function (the result of fusing past a nonlinearity)."""

    fn: Callable[[np.ndarray], np.ndarray]
    in_dim: int = 0
    out_dim: int = 0
    name: str = "general"

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.fn(x)


def compose(first: FuncSpec, second: FuncSpec) -> FuncSpec:
    """The function ``second(first(x))`` with the strongest structure retained."""
    if first.out_dim != second.in_dim:
        raise CompilationError(
            f"cannot compose {first.out_dim}-dim output into {second.in_dim}-dim input")
    if isinstance(first, ElementwiseAffine) and isinstance(second, ElementwiseAffine):
        return ElementwiseAffine(first.scale * second.scale,
                                 first.shift * second.scale + second.shift)
    if isinstance(first, ElementwiseAffine) and isinstance(second, Affine):
        matrix = first.scale[:, None] * second.matrix
        bias = first.shift @ second.matrix + second.bias
        return Affine(matrix, bias)
    if isinstance(first, Affine) and isinstance(second, ElementwiseAffine):
        return Affine(first.matrix * second.scale[None, :],
                      first.bias * second.scale + second.shift)
    if isinstance(first, Affine) and isinstance(second, Affine):
        return Affine(first.matrix @ second.matrix,
                      first.bias @ second.matrix + second.bias)
    first_name = getattr(first, "name", type(first).__name__)
    second_name = getattr(second, "name", type(second).__name__)
    name = f"{first_name}|{second_name}"
    return General(fn=lambda x, f=first, g=second: g(f(x)),
                   in_dim=first.in_dim, out_dim=second.out_dim, name=name)


# ---------------------------------------------------------------------------
# Program steps.
# ---------------------------------------------------------------------------

def even_partition(dim: int, segment_dim: int) -> list[Segment]:
    """Split [0, dim) into contiguous segments of at most ``segment_dim``."""
    if segment_dim <= 0:
        raise ValueError("segment_dim must be positive")
    return [(s, min(s + segment_dim, dim)) for s in range(0, dim, segment_dim)]


@dataclass
class MapStep:
    """Partition + Map: apply ``fns[i]`` to segment ``partition[i]``; concat."""

    partition: list[Segment]
    fns: list[FuncSpec]

    def __post_init__(self):
        if len(self.partition) != len(self.fns):
            raise CompilationError("one function per segment required")
        for (start, stop), fn in zip(self.partition, self.fns):
            if stop - start != fn.in_dim:
                raise CompilationError(
                    f"segment [{start},{stop}) width {stop - start} != fn.in_dim {fn.in_dim}")

    @property
    def n_segments(self) -> int:
        return len(self.partition)

    @property
    def in_dim(self) -> int:
        return max(stop for _, stop in self.partition)

    @property
    def out_dims(self) -> list[int]:
        return [fn.out_dim for fn in self.fns]

    @property
    def out_dim(self) -> int:
        return sum(self.out_dims)

    @property
    def is_elementwise(self) -> bool:
        return all(fn.is_elementwise for fn in self.fns)

    @property
    def is_whole(self) -> bool:
        """True when a single segment covers the entire input vector."""
        return self.n_segments == 1

    def apply(self, x: np.ndarray) -> np.ndarray:
        outs = [fn(x[:, start:stop]) for (start, stop), fn in zip(self.partition, self.fns)]
        return np.concatenate(outs, axis=1)


@dataclass
class SumReduceStep:
    """Element-wise sum of the segment outputs of the preceding MapStep."""

    n_segments: int
    seg_dim: int

    @property
    def in_dim(self) -> int:
        return self.n_segments * self.seg_dim

    @property
    def out_dim(self) -> int:
        return self.seg_dim

    def apply(self, x: np.ndarray) -> np.ndarray:
        if x.shape[1] != self.in_dim:
            raise ShapeError(f"SumReduce expected {self.in_dim} values, got {x.shape[1]}")
        return x.reshape(x.shape[0], self.n_segments, self.seg_dim).sum(axis=1)


Step = MapStep | SumReduceStep


@dataclass
class PrimitiveProgram:
    """An executable sequence of primitive steps."""

    input_dim: int
    steps: list[Step] = field(default_factory=list)

    def validate(self) -> None:
        dim = self.input_dim
        for i, step in enumerate(self.steps):
            if step.in_dim != dim and not (isinstance(step, MapStep) and step.in_dim <= dim):
                raise CompilationError(
                    f"step {i} ({type(step).__name__}) expects dim {step.in_dim}, "
                    f"current vector has dim {dim}")
            if isinstance(step, MapStep):
                covered = sorted(step.partition)
                expected = 0
                for start, stop in covered:
                    if start != expected:
                        raise CompilationError(
                            f"step {i}: partition does not tile the input "
                            f"(gap or overlap at {start})")
                    expected = stop
                if expected != dim:
                    raise CompilationError(
                        f"step {i}: partition covers [0,{expected}) but input has dim {dim}")
            dim = step.out_dim

    @property
    def output_dim(self) -> int:
        dim = self.input_dim
        for step in self.steps:
            dim = step.out_dim
        return dim

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """Full-precision reference evaluation of the program."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        for step in self.steps:
            x = step.apply(x)
        return x

    @property
    def num_map_steps(self) -> int:
        """Table-lookup rounds — the paper's fusion metric (7 -> 2 in Fig. 5)."""
        return sum(1 for s in self.steps if isinstance(s, MapStep))

    @property
    def num_tables(self) -> int:
        """Total segment tables (one lookup per segment per MapStep)."""
        return sum(s.n_segments for s in self.steps if isinstance(s, MapStep))

    def describe(self) -> str:
        lines = [f"PrimitiveProgram(input_dim={self.input_dim})"]
        for i, step in enumerate(self.steps):
            if isinstance(step, MapStep):
                kinds = ",".join(type(f).__name__ for f in step.fns[:4])
                more = "..." if step.n_segments > 4 else ""
                lines.append(f"  [{i}] Map x{step.n_segments} ({kinds}{more}) -> {step.out_dim}")
            else:
                lines.append(f"  [{i}] SumReduce {step.n_segments}x"
                             f"{step.seg_dim} -> {step.out_dim}")
        return "\n".join(lines)
