"""The bit-identity test wall around the two-level cache + pruned TCAM.

Four layers of defense for the serving hot path:

- property tests (hypothesis): an L2 approximate hit can NEVER flip a
  decision, even for probes jittered right across quantization-bucket
  boundaries; the pruned TCAM kernel's candidate sets always contain the
  full scan's winning row;
- degenerate-capacity tests: L2 bucket churn at capacity 1/2 stays
  bit-identical and keeps the ``exact + approx + misses == lookups`` stat
  identity;
- sharing tests: export/import semantics (dedup, no echo) and real
  cross-worker L2 sharing under ``topology="parallel"`` with the spawn
  start method;
- a mutation test: a deliberately-wrong approximate hit (via
  ``install_l2_fault_backend``) must be caught by the differential matrix
  and ddmin-shrunk — proving the wall actually guards the approximate path.
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapping import (certified_decision_box,
                                decision_box_certified, decision_cell_box)
from repro.errors import ConfigError
from repro.eval import differential as dfl
from repro.net import build_scenario
from repro.serving.cache import (_DEC, _HI, _LO, PENDING, CacheStats,
                                 QuantizedDecisionStore, TwoLevelDecisionCache)
from repro.serving.engine import EngineConfig, PegasusEngine, lookup_backends


@pytest.fixture(scope="module")
def model():
    return dfl.build_reference_model(seed=0)


@pytest.fixture(scope="module")
def workload():
    # Flood traffic repeats decision cells heavily: plenty of approximate
    # hits, so the fault/mutation path below actually fires.
    return build_scenario("attack_flood").generate(seed=3, flows_scale=0.15)


BASE_CONFIG = dict(runtime="windowed", feature_mode="stats", window=8,
                   capacity=4096, batch_size=64)


def _serve(source, workload, **overrides):
    config = EngineConfig(**{**BASE_CONFIG, **overrides})
    with PegasusEngine(source=source, config=config) as eng:
        return eng.serve(workload.trace, labels=workload.labels)


# ---------------------------------------------------------------------------
# L2 store degenerate / churn semantics (unit level)
# ---------------------------------------------------------------------------

class TestQuantizedStoreDegenerate:
    def _box(self, center, width=4):
        feats = np.asarray(center, dtype=np.int64)
        return feats, feats - width, feats + width

    def test_capacity_one_bucket_churn(self):
        store = QuantizedDecisionStore(capacity=1, quantize_shift=6)
        a, a_lo, a_hi = self._box([10, 10])
        b, b_lo, b_hi = self._box([200, 200])
        store.insert(a, a_lo, a_hi, 1)
        assert store.probe(a) is not None
        _, evicted = store.insert(b, b_lo, b_hi, 2)   # different bucket
        assert evicted == 1 and store.n_buckets == 1
        assert store.probe(a) is None                  # a's bucket churned out
        assert int(store.probe(b)[_DEC]) == 2

    def test_bucket_entries_fifo_churn(self):
        store = QuantizedDecisionStore(capacity=4, quantize_shift=6,
                                       bucket_entries=2)
        # Three disjoint boxes in ONE bucket (all keys quantize alike).
        feats = [np.asarray([64 + i, 64], dtype=np.int64) for i in range(3)]
        for i, f in enumerate(feats):
            store.insert(f, f, f, i)                   # point boxes
        assert len(store) == 2                         # FIFO dropped entry 0
        assert store.probe(feats[0]) is None
        assert int(store.probe(feats[1])[_DEC]) == 1
        assert int(store.probe(feats[2])[_DEC]) == 2

    def test_probe_requires_box_containment(self):
        store = QuantizedDecisionStore(capacity=4, quantize_shift=6)
        feats, lo, hi = self._box([100, 100], width=2)
        store.insert(feats, lo, hi, 7)
        # Same quantization bucket, outside the certificate box: no hit —
        # the quantized key alone never serves a decision.
        near = feats + 3
        assert store.key_for(near) == store.key_for(feats)
        assert store.probe(near) is None
        assert int(store.probe(feats + 2)[_DEC]) == 7  # box edge inclusive

    def test_export_drains_and_import_never_echoes(self):
        a = QuantizedDecisionStore(capacity=8, quantize_shift=6)
        b = QuantizedDecisionStore(capacity=8, quantize_shift=6)
        feats, lo, hi = self._box([50, 60])
        a.insert(feats, lo, hi, 3)
        delta = a.export_delta()
        assert len(delta) == 1 and a.export_delta() == []      # drained
        b.import_entries(delta)
        assert int(b.probe(feats)[_DEC]) == 3
        assert b.export_delta() == []                          # no echo
        b.import_entries(delta)                                # idempotent
        assert len(b) == 1

    def test_pending_entries_never_exported(self):
        store = QuantizedDecisionStore(capacity=8, quantize_shift=6)
        feats, lo, hi = self._box([10, 20])
        entry, _ = store.insert(feats, lo, hi, PENDING, group_key="k")
        assert store.export_delta() == []
        store.resolve(entry, 5, store.key_for(feats))
        (qk, _, _, decision), = store.export_delta()
        assert decision == 5 and qk == store.key_for(feats)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            QuantizedDecisionStore(capacity=0)
        with pytest.raises(ConfigError):
            QuantizedDecisionStore(quantize_shift=17)
        with pytest.raises(ConfigError):
            TwoLevelDecisionCache(l2_quantize_shift=-1)


# ---------------------------------------------------------------------------
# Property: verified approximate hits can never flip a decision
# ---------------------------------------------------------------------------

# Coordinates biased toward quantization-bucket edges (multiples of
# 1 << 6 = 64): the exact region where an unsound certificate would let a
# quantized-key hit serve the wrong side of a decision boundary.
_coord = st.one_of(
    st.integers(min_value=0, max_value=255),
    st.builds(lambda k, d: max(0, min(255, (k << 6) + d)),
              st.integers(min_value=0, max_value=4),
              st.integers(min_value=-2, max_value=2)),
)


class TestNeverFlipProperty:
    @given(base=st.lists(_coord, min_size=16, max_size=16),
           jitter=st.lists(st.integers(min_value=-3, max_value=3),
                           min_size=16, max_size=16))
    @settings(max_examples=60, deadline=None)
    def test_approx_hit_never_flips_decision(self, model, base, jitter):
        store = QuantizedDecisionStore(capacity=8, quantize_shift=6)
        x0 = np.asarray(base, dtype=np.int64)
        lo, hi = decision_cell_box(model, x0)
        d0 = int(model.predict(x0[None, :])[0])
        # The certificate is sound at its own anchor point.
        assert np.all(lo[0] <= x0) and np.all(x0 <= hi[0])
        store.insert(x0, lo[0], hi[0], d0)

        x1 = np.clip(x0 + np.asarray(jitter, dtype=np.int64), 0, 255)
        entry = store.probe(x1)
        if entry is None:
            return      # nothing served -> nothing to flip
        # A hit is only ever served from inside the certified box, and the
        # cached decision equals the model's exact decision at the probe.
        assert np.all(entry[_LO] <= x1) and np.all(x1 <= entry[_HI])
        assert int(entry[_DEC]) == int(model.predict(x1[None, :])[0])

    @given(base=st.lists(_coord, min_size=16, max_size=16))
    @settings(max_examples=30, deadline=None)
    def test_cell_box_is_constant_decision_region(self, model, base):
        x0 = np.asarray(base, dtype=np.int64)
        lo, hi = decision_cell_box(model, x0)
        d0 = int(model.predict(x0[None, :])[0])
        # Every corner-ish probe inside the box gets the same decision.
        probes = np.stack([lo[0], hi[0], (lo[0] + hi[0]) // 2,
                           np.minimum(x0 + 1, hi[0]),
                           np.maximum(x0 - 1, lo[0])])
        assert (model.predict(probes) == d0).all()

    @given(base=st.lists(_coord, min_size=16, max_size=16),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_certified_box_is_constant_decision_region(self, model, base,
                                                       seed):
        # The interval-certified bucket cube (the box upgrade a two-level
        # insert attempts) must be as sound as the leaf cell box: every
        # point inside the returned box — corners included — receives the
        # anchor's decision.
        x0 = np.asarray(base, dtype=np.int64)
        lo, hi = certified_decision_box(model, x0, quantize_shift=6)
        lo, hi = lo[0], hi[0]
        assert np.all(lo <= x0) and np.all(x0 <= hi)
        d0 = int(model.predict(x0[None, :])[0])
        rng = np.random.default_rng(seed)
        samples = rng.integers(lo, hi + 1, size=(32, len(lo)))
        probes = np.concatenate([samples, lo[None, :], hi[None, :]])
        assert (model.predict(probes) == d0).all()

    @given(base=st.lists(_coord, min_size=16, max_size=16))
    @settings(max_examples=30, deadline=None)
    def test_certified_verdict_never_lies_on_cube(self, model, base):
        # decision_box_certified's True verdict over the shift-6 bucket
        # cube is checked against brute-force sampling; a False verdict is
        # always acceptable (it only means "could not prove").
        x0 = np.asarray(base, dtype=np.int64)
        cube_lo = (x0 >> 6) << 6
        cube_hi = cube_lo + 63
        if not decision_box_certified(model, x0, cube_lo, cube_hi)[0]:
            return
        d0 = int(model.predict(x0[None, :])[0])
        rng = np.random.default_rng(int(x0.sum()))
        probes = rng.integers(cube_lo, cube_hi + 1, size=(64, len(x0)))
        assert (model.predict(probes) == d0).all()


# ---------------------------------------------------------------------------
# Property: pruned candidate sets contain the full scan's winner
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def packed_tables(model):
    tables = [t for t in model.layers[0].tables if t.kind == "fuzzy"]
    packed = [t.tcam_segment(pruned=True).flat for t in tables]
    packed = [p for p in packed
              if p is not None and p.pruned_index() is not None]
    assert packed, "reference model must exercise the pruned kernel"
    return packed


class TestPrunedSupersetProperty:
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_candidates_contain_full_scan_winner(self, packed_tables, data):
        packed = packed_tables[
            data.draw(st.integers(0, len(packed_tables) - 1))]
        n_fields = packed.values.shape[1]
        domain_hi = (1 << packed.key_bits) - 1
        n = data.draw(st.integers(min_value=1, max_value=8))
        keys_u = np.asarray(
            data.draw(st.lists(
                st.lists(st.integers(0, domain_hi),
                         min_size=n_fields, max_size=n_fields),
                min_size=n, max_size=n)), dtype=np.int64)

        cands = packed.candidate_rows(keys_u)
        assert len(cands) == n
        match = ((keys_u[:, None, :] & packed.masks[None, :, :])
                 == packed.values[None, :, :]).all(axis=2)
        assert match.any(axis=1).all()      # tree tables cover the domain
        for i in range(n):
            rows = np.nonzero(match[i])[0]
            winner = rows[np.argmin(packed.priorities[rows])]
            assert winner in cands[i]
        # ... and the pruned lookup itself stays bit-identical.
        np.testing.assert_array_equal(
            packed.lookup_encoded(keys_u, pruned=True),
            packed.lookup_encoded(keys_u, pruned=False))

    def test_non_prefix_masks_disable_pruning(self):
        from repro.dataplane.tcam import PackedTernaryTable
        table = PackedTernaryTable(
            values=np.asarray([[0b0101]], dtype=np.int64),
            masks=np.asarray([[0b0101]], dtype=np.int64),   # not a prefix
            priorities=np.asarray([0], dtype=np.int64),
            results=np.asarray([0], dtype=np.int64),
            key_bits=4)
        assert table.pruned_index() is None
        assert table.candidate_rows(np.asarray([[0b0101]])) == []
        # ... and the pruned entry point silently serves the full scan.
        assert table.lookup_encoded(np.asarray([[0b0101]]),
                                    pruned=True).tolist() == [0]


# ---------------------------------------------------------------------------
# Engine-level churn, stat identity, sharing
# ---------------------------------------------------------------------------

class TestEngineChurnBitIdentity:
    @pytest.fixture(scope="class")
    def reference(self, model, workload):
        return _serve(model, workload, decision_cache="off")

    @pytest.mark.parametrize("l2_capacity", [1, 2])
    def test_l2_bucket_churn_stays_bit_identical(self, model, workload,
                                                 reference, l2_capacity):
        got = _serve(model, workload, decision_cache="l1+l2",
                     cache_capacity=2, l2_capacity=l2_capacity)
        assert got.decisions == reference.decisions
        cs = got.cache_stats
        assert cs.evictions > 0                          # churn really happened
        assert cs.exact_hits + cs.approx_hits + cs.misses == cs.lookups \
            == got.n_decisions

    def test_batched_stat_stream_identity_under_churn(self, model, workload):
        """Batch size must not perturb the cache op stream, even while both
        levels churn at degenerate capacity: the batched two-pass protocol
        replays the scalar op sequence exactly."""
        streams = set()
        decisions = []
        for batch_size in (64, 7):
            got = _serve(model, workload, decision_cache="l1+l2",
                         cache_capacity=2, l2_capacity=1,
                         batch_size=batch_size)
            cs = got.cache_stats
            streams.add((cs.exact_hits, cs.approx_hits, cs.misses,
                         cs.evictions))
            decisions.append(got.decisions)
        assert len(streams) == 1
        assert decisions[0] == decisions[1]

    def test_stat_identity_regression(self, model, workload, reference):
        """exact_hits + approx_hits + misses == lookups, at ample capacity,
        with both hit kinds actually nonzero — the regression pin for the
        one-lookup-per-decision invariant."""
        got = _serve(model, workload, decision_cache="l1+l2")
        cs = got.cache_stats
        assert cs.approx_hits > 0
        assert cs.exact_hits == cs.hits                   # alias
        assert cs.exact_hits + cs.approx_hits + cs.misses == cs.lookups
        assert cs.lookups == got.n_decisions == reference.n_decisions
        merged = CacheStats()
        merged.merge(cs)
        merged.merge(cs)
        assert merged.approx_hits == 2 * cs.approx_hits
        assert merged.lookups == 2 * cs.lookups


class TestCrossReplicaSharing:
    def test_export_import_serves_other_replicas_decisions(self, model):
        a = TwoLevelDecisionCache(capacity=16, l2_capacity=16)
        b = TwoLevelDecisionCache(capacity=16, l2_capacity=16)
        x = np.asarray([100] * model.input_dim, dtype=np.int64)
        lo, hi = decision_cell_box(model, x)
        d = int(model.predict(x[None, :])[0])
        a.insert(("flow", b"w"), x, lo[0], hi[0], d)

        b.import_l2(a.export_l2())
        assert a.export_l2() == []                       # drained
        entry = b.approx_get(x)                          # A's decision, via L2
        assert entry is not None and int(entry[_DEC]) == d
        assert b.stats.approx_hits == 1 and b.stats.hits == 0
        assert b.export_l2() == []                       # imports never echo

    def test_parallel_spawn_workers_share_l2(self, model, workload):
        """Under ``topology="parallel"`` + spawn, worker L2 entries cross the
        process boundary through the dispatcher's export/merge/seed loop and
        are served to other replicas on later traces — bit-identically."""
        second = build_scenario("attack_flood").generate(seed=9,
                                                         flows_scale=0.15)
        config = EngineConfig(**{**BASE_CONFIG, "decision_cache": "l1+l2",
                                 "topology": "parallel", "n_workers": 2,
                                 "start_method": "spawn"})
        with PegasusEngine(source=model, config=config) as eng:
            first_serve = eng.serve(workload.trace,
                                          labels=workload.labels)
            merged = list(eng._driver._dispatcher._l2_entries)
            second_serve = eng.serve(second.trace, labels=second.labels)
        # Worker exports crossed the spawn boundary and were merged...
        assert merged, "dispatcher merged no L2 exports"
        assert all(len(e) == 4 for e in merged)
        # ...and the seeded store produced approximate hits on new flows,
        # without moving a single decision.
        assert second_serve.cache_stats.approx_hits > 0
        assert first_serve.decisions == \
            _serve(model, workload, decision_cache="off").decisions
        assert second_serve.decisions == \
            _serve(model, second, decision_cache="off").decisions


# ---------------------------------------------------------------------------
# Mutation test: a wrong approximate hit must be caught and shrunk
# ---------------------------------------------------------------------------

class TestL2FaultMutation:
    @pytest.fixture()
    def fault(self):
        name = dfl.install_l2_fault_backend("index+l2fault-test", period=3)
        yield name
        lookup_backends.unregister(name)

    def test_wrong_approx_hit_is_caught(self, model, workload, fault):
        sources = {"windowed": model}
        bad = dfl.EngineCase("windowed", "local", 1, fault, "l1+l2", 64)
        report = dfl.run_differential(workload, sources=sources, cases=[bad])
        assert not report.ok
        assert report.divergences and report.divergences[0].case == bad.label
        # Control: with the L2 disabled the fault has no approximate hits to
        # corrupt — the SAME backend must sail through. The kill is therefore
        # attributable to the approximate path alone.
        control = dfl.EngineCase("windowed", "local", 1, fault, "l1", 64)
        assert dfl.run_differential(workload, sources=sources,
                                    cases=[control]).ok

    def test_wrong_approx_hit_shrinks_to_minimal_trace(self, model, workload,
                                                       fault):
        case = dfl.EngineCase("windowed", "local", 1, fault, "l1+l2", 64)
        failing = dfl.make_failing_predicate(case, model)
        assert failing(workload.trace, workload.labels)
        shrunk, labels = dfl.shrink_failing_trace(
            workload.trace, workload.labels, failing, max_evals=150)
        assert failing(shrunk, labels)
        assert len(shrunk.packets) < workload.n_packets
        assert len(labels) == len(shrunk.packets)
