"""Golden-replay regression fixtures: committed traces + decision digests.

Each golden pins one tiny seeded scenario workload end to end:

- the **generator**: re-materializing the scenario must reproduce the
  committed SPCAP1 trace byte-for-byte (and the label column's digest);
- the **serving stack**: replaying the workload through the local reference
  engine of each runtime kind must reproduce the committed decision digest.

Any intentional change to either side is made by rerunning
``scripts/refresh_goldens.py`` and committing the refreshed fixtures.
"""

import json
from pathlib import Path

import pytest

from repro.eval.differential import (default_sources, labels_digest,
                                     replay_digests, trace_digest,
                                     two_level_replay)
from repro.net import build_scenario, read_trace, trace_to_bytes

FIXTURES = Path(__file__).parent / "fixtures"
MANIFEST = FIXTURES / "scenario_goldens.json"

pytestmark = pytest.mark.golden


def _goldens() -> list[tuple[str, dict]]:
    manifest = json.loads(MANIFEST.read_text())
    return sorted(manifest["goldens"].items())


@pytest.fixture(scope="module")
def sources():
    return default_sources(seed=0)


@pytest.mark.parametrize("key,golden", _goldens())
class TestGoldenReplay:
    def _workload(self, golden):
        return build_scenario(golden["scenario"]).generate(
            seed=golden["seed"], flows_scale=golden["flows_scale"])

    def test_generator_reproduces_committed_trace(self, key, golden):
        workload = self._workload(golden)
        assert workload.n_packets == golden["n_packets"]
        assert [s.name for s in workload.phases] == golden["phases"]
        committed = (FIXTURES / golden["trace"]).read_bytes()
        assert trace_to_bytes(workload.trace) == committed, \
            f"{key}: scenario generator drifted from the committed trace " \
            "(rerun scripts/refresh_goldens.py if intentional)"
        assert trace_digest(workload.trace) == golden["trace_sha256"]
        assert labels_digest(workload.labels) == golden["labels_sha256"]

    def test_committed_trace_roundtrips(self, key, golden):
        trace = read_trace(FIXTURES / golden["trace"])
        assert len(trace.packets) == golden["n_packets"]
        assert trace_digest(trace) == golden["trace_sha256"]

    def test_decision_digests(self, key, golden, sources):
        workload = self._workload(golden)
        got = replay_digests(workload, sources=sources)
        assert got == golden["decisions"], \
            f"{key}: serving stack decisions drifted from the golden " \
            "(rerun scripts/refresh_goldens.py if intentional)"

    def test_two_level_pruned_fast_path_is_bit_identical(self, key, golden,
                                                         sources):
        """The maximal fast path (l1+l2 cache + pruned TCAM) must reproduce
        the pinned reference digest on every golden workload — an unsound
        approximate hit or a dropped TCAM candidate row fails here."""
        workload = self._workload(golden)
        fast = two_level_replay(workload, sources=sources)
        for kind, ref in golden["decisions"].items():
            assert fast[kind]["digest"] == ref["digest"], \
                f"{key}/{kind}: l1+l2 + tcam-pruned changed decisions"
            assert fast[kind]["n_decisions"] == ref["n_decisions"]
        if "cache_counters" in golden:
            got = {kind: fast[kind]["counters"] for kind in fast}
            assert got == golden["cache_counters"], \
                f"{key}: two-level cache counter stream drifted " \
                "(rerun scripts/refresh_goldens.py if intentional)"
