"""Tests for the Leo / N3IC / BoS baselines."""

import numpy as np
import pytest

from repro.baselines import build_baseline, DecisionTree, BASELINE_NAMES
from repro.baselines.n3ic import bits_from_stats
from repro.eval.metrics import macro_f1
from repro.eval.runner import prepare_dataset

FLOWS = 40


@pytest.fixture(scope="module")
def peerrush():
    return prepare_dataset("peerrush", FLOWS, 0)


class TestDecisionTree:
    def test_fits_simple_split(self):
        x = np.array([[0.0], [1.0], [10.0], [11.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTree(max_nodes=3).fit(x, y)
        np.testing.assert_array_equal(tree.predict(x), y)

    def test_node_budget_respected(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 255, size=(500, 4))
        y = rng.integers(0, 3, size=500)
        tree = DecisionTree(max_nodes=31).fit(x, y)
        assert tree.n_nodes <= 31

    def test_xor_needs_depth(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, size=(400, 2))
        y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(np.int64)
        tree = DecisionTree(max_nodes=63).fit(x, y)
        assert (tree.predict(x) == y).mean() > 0.9

    def test_leaf_boxes_partition(self):
        rng = np.random.default_rng(2)
        x = np.floor(rng.uniform(0, 16, size=(200, 2)))
        y = (x[:, 0] > 8).astype(np.int64)
        tree = DecisionTree(max_nodes=15).fit(x, y)
        boxes = tree.leaf_boxes(dim=2, lo=0, hi=15)
        for v0 in range(16):
            for v1 in range(16):
                hits = sum(1 for b in boxes
                           if b[0][0] <= v0 <= b[0][1] and b[1][0] <= v1 <= b[1][1])
                assert hits == 1

    def test_empty_raises(self):
        from repro.errors import TrainingError
        with pytest.raises(TrainingError):
            DecisionTree().fit(np.zeros((0, 2)), np.zeros(0, dtype=np.int64))


class TestBaselineContracts:
    @pytest.mark.parametrize("name", BASELINE_NAMES)
    def test_train_compile_predict(self, name, peerrush):
        train_v, _v, test_v, n_classes = peerrush
        model = build_baseline(name, n_classes, seed=0)
        model.train(train_v)
        model.compile_dataplane(train_v)
        pred = model.predict_dataplane(test_v)
        assert macro_f1(test_v["y"], pred, n_classes) > 1.0 / n_classes

    def test_unknown_baseline(self):
        with pytest.raises(ValueError):
            build_baseline("RandomForest", 3)


class TestN3IC:
    def test_bits_unpack(self):
        stats = np.array([[0b10000001] + [0] * 15], dtype=np.uint8)
        bits = bits_from_stats(stats)
        assert bits.shape == (1, 128)
        assert bits[0, 0] == 1.0 and bits[0, 7] == 1.0
        assert bits[0, 1] == -1.0

    def test_dataplane_matches_float(self, peerrush):
        """XNOR+popcount inference is bit-exact with the sign-net forward."""
        train_v, _v, test_v, n_classes = peerrush
        model = build_baseline("N3IC", n_classes, seed=0)
        model.train(train_v)
        model.compile_dataplane(train_v)
        np.testing.assert_array_equal(model.predict_dataplane(test_v),
                                      model.predict_float(test_v))

    def test_model_size_binary_bits(self):
        model = build_baseline("N3IC", 3, seed=0)
        # 128*128 + 128*64 + 64*3 binary weights.
        assert model.model_size_kbits() == pytest.approx(24.768, abs=0.01)

    def test_stage_cost_exceeds_pipeline(self):
        model = build_baseline("N3IC", 3, seed=0)
        assert model.pipeline_stages_needed() > 20  # cannot fit Tofino


class TestBoS:
    def test_input_scale_18_bits(self):
        assert build_baseline("BoS", 3).input_scale_bits() == 18

    def test_dataplane_matches_float(self, peerrush):
        """Enumerated tables reproduce the binarized net exactly."""
        train_v, _v, test_v, n_classes = peerrush
        model = build_baseline("BoS", n_classes, seed=0)
        model.train(train_v)
        model.compile_dataplane(train_v)
        np.testing.assert_array_equal(model.predict_dataplane(test_v),
                                      model.predict_float(test_v))

    def test_table_size_exponential_in_key(self, peerrush):
        train_v, _v, _t, n_classes = peerrush
        model = build_baseline("BoS", n_classes, seed=0)
        model.train(train_v)
        model.compile_dataplane(train_v)
        assert len(model.step_table) == 1 << (2 + model.hidden)
