"""Differential replay: fuzz the whole serving matrix with scenario workloads.

The engine's core promise is that every serving configuration —
topology x cache x lookup backend x runtime kind, at any batch size — emits
**bit-identical decisions** to the per-packet scalar reference. The unit
tests assert it on one static mix; this harness turns the claim into a
*property* checked on adversarial, time-varying workloads:

1. :func:`run_differential` replays one materialized
   :class:`~repro.net.scenarios.ScenarioTrace` through every
   :class:`EngineCase` of the matrix and compares each decision stream to
   the scalar reference of its runtime kind, plus cross-config *stat
   consistency* (cache counters must agree across every cached config, and
   flush totals across every config with the same sharding/batch shape).
2. :func:`fuzz_differential` drives that check from seeded scenario
   mutation — one fixed seed plus N derived random seeds, time-boxed —
   so CI explores a fresh slice of workload space on every run.
3. When a configuration diverges, :func:`shrink_failing_trace` delta-debugs
   the workload (drop whole flows, then ddmin packet chunks) down to a
   minimal failing trace, and the fuzzer writes it — trace bytes, labels,
   and divergence metadata — as a repro artifact.

The harness is *mutation-tested*: :func:`install_fault_backend` registers a
deliberately broken lookup backend (it flips a deterministic sliver of
decisions), and the test suite asserts the harness catches the fault and
shrinks it to a handful of packets.

Open-loop serves get the same treatment: :func:`verify_open_loop` replays
an :class:`OpenLoopReport`'s *claimed* admitted subsequence through the
per-packet scalar reference and demands bit-identity with the served
decision stream, and :func:`install_lying_admission_policy` registers a
policy that misreports its shed set to prove the verifier catches it.

CLI (the ``scenario-fuzz`` CI job)::

    PYTHONPATH=src python -m repro.eval.differential \
        --seeds 4 --budget-seconds 240 --out fuzz-artifacts

Exit status 0 means every examined (scenario, seed, case) triple matched;
1 means at least one divergence was found (artifacts written to ``--out``).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.net.scenarios import ScenarioTrace, build_scenario, scenario_names
from repro.net.traces import Trace, trace_to_bytes, write_trace
from repro.serving.engine import (EngineConfig, PegasusEngine,
                                  register_lookup_backend, runtime_kinds)
from repro.serving.openloop import TailDropAdmission
from repro.utils.rng import new_rng

DEFAULT_CAPACITY = 4096          # ample: cross-worker identity needs no eviction
DEFAULT_CACHE_CAPACITY = 1 << 15
RUNTIME_KINDS = ("windowed", "two_stage")


# ---------------------------------------------------------------------------
# The engine matrix
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EngineCase:
    """One point of the serving matrix."""

    runtime: str = "windowed"
    topology: str = "local"
    n_workers: int = 1
    lookup_backend: str = "index"
    decision_cache: bool | str = "off"
    batch_size: int = 64
    # Shared-memory ring geometry (parallel topology only; the defaults
    # match EngineConfig). Non-default values stress wraparound and
    # backpressure edges — decisions must stay bit-identical regardless.
    ring_depth: int = 4
    ring_chunk: int | None = None

    @property
    def cache_mode(self) -> str:
        """The cache axis as a mode string (bools accepted for back-compat)."""
        if self.decision_cache is False:
            return "off"
        if self.decision_cache is True:
            return "l1"
        return self.decision_cache

    @property
    def cached(self) -> bool:
        return self.cache_mode != "off"

    @property
    def label(self) -> str:
        ring = ""
        if self.ring_depth != 4 or self.ring_chunk is not None:
            ring = f"/ring{self.ring_depth}x{self.ring_chunk or 'auto'}"
        return (f"{self.runtime}/{self.topology}{self.n_workers}/"
                f"{self.lookup_backend}/{self.cache_mode}/b{self.batch_size}"
                f"{ring}")

    def config(self, capacity: int = DEFAULT_CAPACITY,
               cache_capacity: int = DEFAULT_CACHE_CAPACITY) -> EngineConfig:
        return EngineConfig(
            runtime=self.runtime, feature_mode="stats", window=8,
            capacity=capacity, lookup_backend=self.lookup_backend,
            batch_size=self.batch_size, decision_cache=self.cache_mode,
            cache_capacity=cache_capacity, topology=self.topology,
            n_workers=self.n_workers, ring_depth=self.ring_depth,
            ring_chunk=self.ring_chunk)


def build_cases(runtimes: tuple[str, ...] = RUNTIME_KINDS,
                worker_counts: tuple[int, ...] = (1, 2),
                backends: tuple[str, ...] = ("index", "tcam", "tcam-pruned"),
                caches: tuple[bool | str, ...] = ("off", "l1", "l1+l2"),
                batch_sizes: tuple[int, ...] = (64,),
                include_parallel: bool = True) -> list[EngineCase]:
    """The full matrix: every topology x cache x backend x runtime point.

    ``local`` runs the full backend x cache cross product (one in-process
    replica — cheap). ``sharded`` and (optionally) ``parallel`` run at every
    requested worker count, rotating through the backend x cache pairs so
    every pair still appears in a multi-replica topology at least once per
    runtime kind without exploding the process-forking corner of the matrix.
    """
    combos = list(itertools.product(backends, caches))
    cases = []
    for kind, batch in itertools.product(runtimes, batch_sizes):
        for backend, cached in combos:
            cases.append(EngineCase(kind, "local", 1, backend, cached, batch))
        # Rotate (backend, cache) pairs across the scaled-out topologies:
        # offset by one per worker count so sharded and parallel between
        # them cover every pair at every requested scale over the rotation.
        for i, n in enumerate(worker_counts):
            for j in range(0, len(combos), 2):
                backend, cached = combos[(i + j) % len(combos)]
                cases.append(EngineCase(kind, "sharded", n, backend, cached,
                                        batch))
            if include_parallel:
                for j in range(1, len(combos), 2):
                    backend, cached = combos[(i + j) % len(combos)]
                    cases.append(EngineCase(kind, "parallel", n, backend,
                                            cached, batch))
    return cases


def quick_cases(runtimes: tuple[str, ...] = RUNTIME_KINDS) -> list[EngineCase]:
    """A reduced matrix for time-boxed runs: every axis still varies, but
    not in full cross product (parallel only once per runtime kind)."""
    cases = []
    for kind in runtimes:
        cases += [
            EngineCase(kind, "local", 1, "index", "off", 32),
            EngineCase(kind, "local", 1, "tcam", "l1", 64),
            EngineCase(kind, "local", 1, "tcam-pruned", "l1+l2", 64),
            EngineCase(kind, "sharded", 2, "index", "l1+l2", 64),
            EngineCase(kind, "sharded", 2, "tcam", "off", 96),
            EngineCase(kind, "parallel", 2, "index", "l1+l2", 64),
        ]
    return cases


# ---------------------------------------------------------------------------
# Sources + scalar references
# ---------------------------------------------------------------------------

def build_reference_model(seed: int = 0, input_dim: int = 16,
                          n_classes: int = 3):
    """A small deterministic compiled model (windowed-runtime source).

    Matches the test fixtures: an untrained seeded MLP compiled over a
    uniform calibration set — decisions are arbitrary but fully
    deterministic, which is all differential replay needs.
    """
    from repro import nn
    from repro.core import CompilerConfig, PegasusCompiler

    rng = np.random.default_rng(seed)
    model = nn.Sequential(nn.Linear(input_dim, 8, rng=seed),
                          nn.ReLU(), nn.Linear(8, n_classes, rng=seed + 1))
    for p in model.parameters():
        p.data *= 0.1
    model.eval_mode()
    x = np.floor(rng.uniform(0, 255, size=(400, input_dim))).astype(np.int64)
    return PegasusCompiler(CompilerConfig(refine=False)) \
        .compile_sequential(model, x).compiled


def build_two_stage_spec(seed: int = 0, n_classes: int = 3,
                         idx_bits: int = 4, raw_bytes: int = 60,
                         window: int = 8) -> dict:
    """A small deterministic two-stage runtime spec (CNN-L deployment shape)."""
    from repro.core.fuzzy import FuzzyTree

    rng = np.random.default_rng(seed)
    tree = FuzzyTree.fit(rng.uniform(0, 255, size=(300, raw_bytes)),
                         n_leaves=1 << idx_bits)
    slot_values = [rng.integers(-20, 21, size=(1 << idx_bits, n_classes))
                   for _ in range(window)]
    return {"extractor_tree": tree, "slot_values": slot_values,
            "n_classes": n_classes, "idx_bits": idx_bits,
            "raw_bytes": raw_bytes}


def default_sources(seed: int = 0) -> dict:
    """One deterministic source per runtime kind."""
    return {"windowed": build_reference_model(seed),
            "two_stage": build_two_stage_spec(seed)}


def scalar_reference(source, runtime_kind: str, trace: Trace,
                     labels: np.ndarray,
                     capacity: int = DEFAULT_CAPACITY) -> list:
    """Per-packet ground-truth replay of a trace (no batching, no cache).

    Builds one replica of ``runtime_kind`` from ``source`` through the
    engine's own registry and drives ``process_packet`` — the pre-batching
    reference every matrix point must reproduce bit-for-bit.
    """
    config = EngineConfig(runtime=runtime_kind, feature_mode="stats",
                          window=8, capacity=capacity)
    replica = runtime_kinds.get(runtime_kind).build(source, config)
    decisions = []
    for i, packet in enumerate(trace.packets):
        d = replica.process_packet(packet, int(labels[i]))
        if d is not None:
            d.seq = i
            decisions.append(d)
    return decisions


# ---------------------------------------------------------------------------
# Differential run
# ---------------------------------------------------------------------------

@dataclass
class Divergence:
    """The first point where one configuration's decisions left the reference."""

    case: str
    index: int                   # position in the reference decision stream
    expected: object | None      # PacketDecision (None: stream ended early)
    got: object | None

    def describe(self) -> str:
        return (f"{self.case}: first divergence at decision #{self.index}: "
                f"expected {self.expected}, got {self.got}")


def first_divergence(reference: list, got: list, case: str) -> Divergence | None:
    """Locate the first mismatched decision (None when streams are equal)."""
    for i, (want, have) in enumerate(zip(reference, got)):
        if want != have:
            return Divergence(case, i, want, have)
    if len(reference) != len(got):
        i = min(len(reference), len(got))
        return Divergence(case, i,
                          reference[i] if i < len(reference) else None,
                          got[i] if i < len(got) else None)
    return None


@dataclass
class DifferentialReport:
    """Everything one differential replay established."""

    scenario: str
    seed: int | None
    n_packets: int
    rows: list[dict] = field(default_factory=list)
    divergences: list[Divergence] = field(default_factory=list)
    stat_notes: list[str] = field(default_factory=list)

    @property
    def decisions_match(self) -> bool:
        return not self.divergences

    @property
    def stats_consistent(self) -> bool:
        return not self.stat_notes

    @property
    def ok(self) -> bool:
        return self.decisions_match and self.stats_consistent

    def summary(self) -> dict:
        return {
            "scenario": self.scenario, "seed": self.seed,
            "n_packets": self.n_packets, "cases": len(self.rows),
            "decisions_match": self.decisions_match,
            "stats_consistent": self.stats_consistent,
            "divergences": [d.describe() for d in self.divergences],
            "stat_notes": list(self.stat_notes),
        }


def _check_stats(rows: list[dict], notes: list[str]) -> None:
    """Cross-config stat invariants (decisions aside).

    Cache rows are ``(exact_hits, approx_hits, misses, evictions)``:

    - every cached config performs exactly one cache lookup per decision
      (``exact + approx + misses == n_decisions``);
    - with no evictions anywhere (capacity ample), every cached config of a
      runtime kind sees the *same* exact hits — the L1 is keyed by (flow,
      window), and neither topology, sharding, nor the L2 may change what a
      flow's windows are or which L1 probes hit;
    - within one (kind, cache mode, worker count, parallel?) group, the
      *full* counter tuple is identical across lookup backends and batch
      sizes — backends never touch the cache and the batched two-pass
      protocol replays the scalar op sequence exactly (approximate-hit
      patterns may legitimately differ across replica layouts, so groups
      never span topologies with different replica counts);
    - configs with the same runtime kind, sharding shape, and batch size
      must cut the same spans, hence equal flush totals.
    """
    cached = [r for r in rows if r["cache"] is not None]
    for r in cached:
        hits, approx, misses, _ = r["cache"]
        if hits + approx + misses != r["n_decisions"]:
            notes.append(f"{r['case']}: {hits}+{approx}+{misses} cache "
                         f"lookups for {r['n_decisions']} decisions")
    for kind in {r["runtime"] for r in cached}:
        group = [r for r in cached if r["runtime"] == kind]
        if any(r["cache"][3] for r in group):
            continue            # evictions: per-replica capacity bound, skip
        exact = {r["cache"][0] for r in group}
        if len(exact) > 1:
            notes.append(f"{kind}: cached configs disagree on exact hits: "
                         f"{ {r['case']: r['cache'] for r in group} }")
    by_layout: dict[tuple, list[dict]] = {}
    for r in cached:
        layout = (r["runtime"], r["cache_mode"], r["n_workers"],
                  r["topology"] == "parallel")
        by_layout.setdefault(layout, []).append(r)
    for layout, group in by_layout.items():
        counters = {r["cache"] for r in group}
        if len(counters) > 1:
            notes.append(f"cache counters diverge across {layout}: "
                         f"{ {r['case']: r['cache'] for r in group} }")
    by_shape: dict[tuple, dict[str, int]] = {}
    for r in rows:
        shape = (r["runtime"], r["n_workers"], r["batch_size"])
        by_shape.setdefault(shape, {})[r["case"]] = r["flushes"]
    for shape, members in by_shape.items():
        if len(set(members.values())) > 1:
            notes.append(f"flush totals diverge across {shape}: {members}")


def run_differential(workload: ScenarioTrace, sources: dict | None = None,
                     cases: list[EngineCase] | None = None,
                     capacity: int = DEFAULT_CAPACITY,
                     cache_capacity: int = DEFAULT_CACHE_CAPACITY,
                     check_stats: bool = True) -> DifferentialReport:
    """Replay one workload through the matrix; compare against references."""
    sources = default_sources() if sources is None else sources
    cases = build_cases() if cases is None else cases
    report = DifferentialReport(scenario=workload.scenario,
                                seed=workload.seed,
                                n_packets=workload.n_packets)
    references = {
        kind: scalar_reference(sources[kind], kind, workload.trace,
                               workload.labels, capacity=capacity)
        for kind in {c.runtime for c in cases}
    }
    for case in cases:
        config = case.config(capacity=capacity, cache_capacity=cache_capacity)
        with PegasusEngine(source=sources[case.runtime], config=config) as eng:
            serve = eng.serve(workload.trace, labels=workload.labels)
        div = first_divergence(references[case.runtime], serve.decisions,
                               case.label)
        if div is not None:
            report.divergences.append(div)
        cs = serve.cache_stats
        report.rows.append({
            "case": case.label, "runtime": case.runtime,
            "topology": case.topology, "n_workers": case.n_workers,
            "batch_size": case.batch_size, "cache_mode": case.cache_mode,
            "n_decisions": serve.n_decisions,
            "match": div is None,
            "cache": ((cs.hits, cs.approx_hits, cs.misses, cs.evictions)
                      if case.cached else None),
            "flushes": serve.flush_stats.total,
            "wall_seconds": serve.wall_seconds,
        })
    if check_stats:
        _check_stats(report.rows, report.stat_notes)
    return report


# ---------------------------------------------------------------------------
# Open-loop verification
# ---------------------------------------------------------------------------

def verify_open_loop(workload: ScenarioTrace, report, source) -> list[str]:
    """Check an :class:`OpenLoopReport`'s claimed served subset, bit-exactly.

    Three properties, returned as a list of human-readable notes (empty
    means the report is sound):

    1. the claimed ``shed_seq`` / ``admitted_seq`` partition the offered
       packets (disjoint, complete);
    2. the claimed admitted count matches the number of packets the engine
       actually served;
    3. a cold per-packet scalar replay of *exactly the claimed admitted
       subsequence* (same runtime kind / window / feature mode / capacity as
       the report's config) is bit-identical to the report's decision
       stream — so a policy cannot silently drop packets, invent decisions,
       or misreport which packets it shed.
    """
    notes: list[str] = []
    n = workload.n_packets
    admitted = np.asarray(report.admitted_seq, dtype=np.int64)
    shed = np.asarray(report.shed_seq, dtype=np.int64)
    both = np.concatenate([admitted, shed])
    if (both.size != n or np.unique(both).size != n
            or (both < 0).any() or (both >= n).any()):
        notes.append(
            f"openloop/{report.admission}: claimed admitted+shed sets do "
            f"not partition the {n} offered packets "
            f"({admitted.size} admitted + {shed.size} shed)")
        return notes          # index sets unusable; replay would be garbage
    if admitted.size != report.serving.n_packets:
        notes.append(
            f"openloop/{report.admission}: claims {admitted.size} admitted "
            f"but the engine served {report.serving.n_packets} packets")
    config = report.config
    sub, labels = workload.subset(admitted)
    replica = runtime_kinds.get(config.runtime).build(source, config)
    reference = []
    for i, packet in enumerate(sub.packets):
        d = replica.process_packet(packet, int(labels[i]))
        if d is not None:
            d.seq = int(admitted[i])     # admitted-subset -> global position
            reference.append(d)
    div = first_divergence(reference, report.serving.decisions,
                           f"openloop/{report.admission}")
    if div is not None:
        notes.append(div.describe())
    return notes


class _LyingTailDrop(TailDropAdmission):
    """Tail-drop that hides one genuinely shed packet from its report."""

    name = "tail-drop+liar"

    def reported_shed(self, shed: list) -> list:
        return shed[1:] if shed else shed


def _build_lying_tail_drop(config) -> _LyingTailDrop:
    return _LyingTailDrop(config.queue_capacity)


def install_lying_admission_policy(name: str = "tail-drop+liar") -> str:
    """Register an admission policy that *misreports* what it shed.

    A tail-drop variant whose ``reported_shed`` hides one genuinely shed
    packet — claiming it was served. :func:`verify_open_loop` must catch the
    lie (the claimed admitted subsequence then contains a packet with no
    decision, so the scalar replay of the claim diverges from the served
    stream); the fault-injection test asserts it does. Registration is
    idempotent (re-registering overwrites).
    """
    from repro.serving.engine import register_admission_policy

    register_admission_policy(name, _build_lying_tail_drop, overwrite=True)
    return name


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------

def make_failing_predicate(case: EngineCase, source,
                           capacity: int = DEFAULT_CAPACITY,
                           cache_capacity: int = DEFAULT_CACHE_CAPACITY):
    """``failing(trace, labels) -> bool`` for one matrix case.

    Rebuilds the reference and the candidate engine cold on every call, so
    the predicate is a pure function of the (sub)trace — exactly what
    delta-debugging requires.
    """
    def failing(trace: Trace, labels: np.ndarray) -> bool:
        if not trace.packets:
            return False
        reference = scalar_reference(source, case.runtime, trace, labels,
                                     capacity=capacity)
        config = case.config(capacity=capacity, cache_capacity=cache_capacity)
        with PegasusEngine(source=source, config=config) as eng:
            got = eng.serve(trace, labels=labels).decisions
        return got != reference
    return failing


def shrink_failing_trace(trace: Trace, labels: np.ndarray, failing,
                         max_evals: int = 200) -> tuple[Trace, np.ndarray]:
    """Delta-debug a failing trace down to a (locally) minimal one.

    Two passes under one evaluation budget: greedily drop whole flows
    (packets sharing a canonical 5-tuple), then ddmin over packet chunks at
    halving granularity. Every candidate is re-replayed from cold state, so
    the result is guaranteed to still satisfy ``failing``.
    """
    packets = list(trace.packets)
    labels = list(np.asarray(labels, dtype=np.int64))
    evals = 0

    def still_fails(keep: list[int]) -> bool:
        nonlocal evals
        evals += 1
        sub = Trace([packets[i] for i in keep])
        return failing(sub, np.asarray([labels[i] for i in keep],
                                       dtype=np.int64))

    keep = list(range(len(packets)))

    # Pass 1: drop whole flows, largest first (fast, high-yield).
    changed = True
    while changed and evals < max_evals:
        changed = False
        flows: dict = {}
        for pos, i in enumerate(keep):
            flows.setdefault(packets[i].key.canonical(), []).append(pos)
        if len(flows) <= 1:
            break
        for key, members in sorted(flows.items(),
                                   key=lambda kv: -len(kv[1])):
            if evals >= max_evals:
                break
            candidate = [i for pos, i in enumerate(keep)
                         if pos not in set(members)]
            if candidate and still_fails(candidate):
                keep = candidate
                changed = True
                break

    # Pass 2: ddmin over packet chunks.
    chunk = max(len(keep) // 2, 1)
    while chunk >= 1 and evals < max_evals:
        reduced = False
        start = 0
        while start < len(keep) and evals < max_evals:
            candidate = keep[:start] + keep[start + chunk:]
            if candidate and still_fails(candidate):
                keep = candidate
                reduced = True
            else:
                start += chunk
        if not reduced:
            if chunk == 1:
                break
            chunk = max(chunk // 2, 1)

    final = Trace([packets[i] for i in keep])
    return final, np.asarray([labels[i] for i in keep], dtype=np.int64)


# ---------------------------------------------------------------------------
# Fault injection (mutation-testing the harness itself)
# ---------------------------------------------------------------------------

class _BitFlipFault:
    """Picklable ``apply`` for :func:`install_fault_backend`.

    Flips the lowest predicted-class bit of every decision whose
    millisecond-quantized timestamp lands on ``offset (mod period)``.
    A module-level class (not a closure) so registry entries stay
    pickle-safe and would survive spawn-based workers.
    """

    def __init__(self, period: int, offset: int):
        self.period = period
        self.offset = offset

    def _hit(self, ts: float) -> bool:
        return int(round(ts * 1000.0)) % self.period == self.offset

    def _corrupt(self, decisions):
        for d in decisions:
            if self._hit(d.ts):
                d.predicted ^= 1
        return decisions

    def __call__(self, replica):
        replica.set_lookup_backend("index")
        orig_trace = replica.process_trace
        orig_columns = replica.process_columns
        replica.process_trace = \
            lambda *a, **k: self._corrupt(orig_trace(*a, **k))
        replica.process_columns = \
            lambda *a, **k: self._corrupt(orig_columns(*a, **k))


def install_fault_backend(name: str = "index+fault", period: int = 7,
                          offset: int = 3) -> str:
    """Register a deliberately broken lookup backend under ``name``.

    The backend serves the normal index path but flips the lowest bit of
    the predicted class for every decision whose (deterministic, millisecond
    -quantized) timestamp lands on ``offset (mod period)`` — a rare,
    topology-independent fault. Differential replay must catch it and the
    shrinker must reduce it to a handful of packets; the tests assert both.
    Registration is idempotent (re-registering overwrites).
    """
    register_lookup_backend(name, apply=_BitFlipFault(period, offset),
                            overwrite=True)
    return name


class _L2BitFlipFault:
    """Picklable ``apply`` for :func:`install_l2_fault_backend`.

    Wraps a replica's two-level cache so every ``period``-th verified L2
    hit returns a copy of the entry with its decision bit-flipped. The
    per-replica wrapper is still a closure (it captures that replica's
    cache), but the registry entry itself is this module-level instance.
    """

    def __init__(self, period: int):
        self.period = period

    def __call__(self, replica):
        from repro.serving.cache import PENDING, _DEC

        replica.set_lookup_backend("index")
        cache = getattr(replica, "decision_cache", None)
        if not getattr(cache, "two_level", False):
            return
        orig = cache.approx_get
        hits = itertools.count(1)
        period = self.period

        def corrupt(feats):
            entry = orig(feats)
            if entry is None or entry[_DEC] is PENDING:
                return entry
            if next(hits) % period == 0:
                entry = list(entry)
                entry[_DEC] = int(entry[_DEC]) ^ 1
            return entry

        cache.approx_get = corrupt


def install_l2_fault_backend(name: str = "index+l2fault",
                             period: int = 5) -> str:
    """Register a backend whose replicas serve WRONG approximate hits.

    The lookup path itself is the normal index path; the fault wraps the
    replica's two-level decision cache so every ``period``-th verified L2
    hit returns a copy of the entry with its decision bit-flipped — the
    exact failure an unsound quantization certificate would cause. The
    differential matrix must flag the first corrupted decision and the
    shrinker must reduce the trace, proving the bit-identity wall actually
    guards the approximate path (mutation-tested). Replicas without a
    two-level cache are left untouched, so the fault fires only where an
    approximate hit can. Registration is idempotent.
    """
    register_lookup_backend(name, apply=_L2BitFlipFault(period),
                            overwrite=True)
    return name


# ---------------------------------------------------------------------------
# Fuzzing
# ---------------------------------------------------------------------------

@dataclass
class FuzzFinding:
    """One shrunk divergence, plus where its repro artifact landed."""

    scenario: str
    generate_seed: int
    case: str
    original_packets: int
    shrunk_packets: int
    divergence: str
    trace_path: str | None = None
    meta_path: str | None = None


@dataclass
class FuzzReport:
    """What one fuzzing session examined and what it found."""

    trials: list[dict] = field(default_factory=list)
    findings: list[FuzzFinding] = field(default_factory=list)
    seconds: float = 0.0
    budget_exhausted: bool = False

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> dict:
        return {
            "trials": len(self.trials),
            "ok": self.ok,
            "seconds": self.seconds,
            "budget_exhausted": self.budget_exhausted,
            "findings": [vars(f) for f in self.findings],
        }


def decision_digest(decisions: list) -> str:
    """Order-sensitive SHA-256 over a decision stream (the golden digest)."""
    h = hashlib.sha256()
    for d in decisions:
        h.update(np.array([d.seq, d.flow_label, d.predicted],
                          dtype=np.int64).tobytes())
        h.update(np.float64(d.ts).tobytes())
    return h.hexdigest()


def trace_digest(trace: Trace) -> str:
    """SHA-256 of the trace's canonical SPCAP1 byte form."""
    return hashlib.sha256(trace_to_bytes(trace)).hexdigest()


def labels_digest(labels: np.ndarray) -> str:
    """SHA-256 of a per-packet label column (int64 little-endian bytes)."""
    return hashlib.sha256(
        np.ascontiguousarray(labels, dtype="<i8").tobytes()).hexdigest()


def replay_digests(workload: ScenarioTrace,
                   sources: dict | None = None) -> dict[str, dict]:
    """Per-runtime-kind decision digests of the local reference replay.

    The digest the golden-replay fixtures pin: one ``local/index/nocache``
    engine per runtime kind (every other matrix point must agree with it
    bit-for-bit anyway, so one digest pins them all).
    """
    sources = default_sources() if sources is None else sources
    out: dict[str, dict] = {}
    for kind in RUNTIME_KINDS:
        case = EngineCase(runtime=kind)
        with PegasusEngine(source=sources[kind],
                           config=case.config()) as eng:
            decisions = eng.serve(workload.trace,
                                  labels=workload.labels).decisions
        out[kind] = {"digest": decision_digest(decisions),
                     "n_decisions": len(decisions)}
    return out


def two_level_replay(workload: ScenarioTrace,
                     sources: dict | None = None) -> dict[str, dict]:
    """Digest + cache counters of the maximal-fast-path replay per kind.

    Replays each runtime kind with the two-level decision cache AND the
    pruned TCAM kernel enabled (``l1+l2`` / ``tcam-pruned``) — the
    configuration where an unsound approximate hit or a dropped candidate
    row would surface. The golden fixtures pin that its digest equals the
    plain reference digest, and (for the counter golden) the exact
    ``(exact_hits, approx_hits, misses, evictions)`` stream.
    """
    sources = default_sources() if sources is None else sources
    out: dict[str, dict] = {}
    for kind in RUNTIME_KINDS:
        case = EngineCase(runtime=kind, lookup_backend="tcam-pruned",
                          decision_cache="l1+l2")
        with PegasusEngine(source=sources[kind],
                           config=case.config()) as eng:
            serve = eng.serve(workload.trace, labels=workload.labels)
        cs = serve.cache_stats
        out[kind] = {"digest": decision_digest(serve.decisions),
                     "n_decisions": serve.n_decisions,
                     "counters": {"exact_hits": cs.exact_hits,
                                  "approx_hits": cs.approx_hits,
                                  "misses": cs.misses,
                                  "evictions": cs.evictions}}
    return out


def _write_finding(out_dir: Path, n: int, workload_name: str, seed: int,
                   case: EngineCase | None, trace: Trace, labels: np.ndarray,
                   divergence: str, original_packets: int) -> tuple[str, str]:
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = f"finding{n}_{workload_name}_s{seed}"
    trace_path = out_dir / f"{stem}.spcap"
    meta_path = out_dir / f"{stem}.json"
    write_trace(trace, trace_path)
    meta_path.write_text(json.dumps({
        "scenario": workload_name,
        "generate_seed": seed,
        # None: a stats-level finding (no single diverging case) — the
        # divergence field names the inconsistent cases instead.
        "case": vars(case) if case is not None else None,
        "original_packets": original_packets,
        "shrunk_packets": len(trace.packets),
        "labels": np.asarray(labels, dtype=np.int64).tolist(),
        "trace_sha256": trace_digest(trace),
        "divergence": divergence,
        "repro": "read the .spcap with repro.net.read_trace, replay with "
                 "repro.eval.differential.run_differential on the case above",
    }, indent=2) + "\n")
    return str(trace_path), str(meta_path)


def fuzz_differential(n_seeds: int = 4, budget_seconds: float = 120.0,
                      base_seed: int = 0,
                      scenarios: tuple[str, ...] | None = None,
                      cases: list[EngineCase] | None = None,
                      sources: dict | None = None,
                      flows_scale: float = 0.4,
                      out_dir: str | Path | None = None,
                      shrink: bool = True,
                      shrink_evals: int = 120,
                      progress=None) -> FuzzReport:
    """Seeded scenario mutation against the matrix, time-boxed.

    Trial 0 always replays ``base_seed`` itself (the fixed regression
    point); trials 1..n_seeds derive fresh generation seeds and jittered
    workload scales from it. Scenario families rotate round-robin. On a
    divergence the failing case is shrunk (cold-state delta debugging) and
    the minimal trace + metadata written to ``out_dir``.
    """
    rng = new_rng(base_seed)
    names = tuple(scenarios) if scenarios else scenario_names()
    sources = default_sources() if sources is None else sources
    cases = quick_cases() if cases is None else cases
    report = FuzzReport()
    started = time.perf_counter()
    for trial in range(n_seeds + 1):
        if time.perf_counter() - started > budget_seconds:
            report.budget_exhausted = True
            break
        name = names[trial % len(names)]
        if trial == 0:
            seed, scale = base_seed, flows_scale
        else:
            seed = int(rng.integers(0, 2**31 - 1))
            scale = flows_scale * float(rng.uniform(0.6, 1.4))
        workload = build_scenario(name).generate(seed=seed, flows_scale=scale)
        diff = run_differential(workload, sources=sources, cases=cases)
        trial_row = {"scenario": name, "seed": seed,
                     "n_packets": workload.n_packets, "ok": diff.ok}
        report.trials.append(trial_row)
        if progress is not None:
            progress(trial_row)
        if diff.ok:
            continue
        detail = (diff.divergences[0].describe() if diff.divergences
                  else "; ".join(diff.stat_notes))
        finding = FuzzFinding(
            scenario=name, generate_seed=seed,
            case=(diff.divergences[0].case if diff.divergences
                  else "<stats>"),
            original_packets=workload.n_packets,
            shrunk_packets=workload.n_packets,
            divergence=detail)
        if shrink and diff.divergences:
            case = next(c for c in cases
                        if c.label == diff.divergences[0].case)
            failing = make_failing_predicate(case, sources[case.runtime])
            shrunk, shrunk_labels = shrink_failing_trace(
                workload.trace, workload.labels, failing,
                max_evals=shrink_evals)
            finding.shrunk_packets = len(shrunk.packets)
            if out_dir is not None:
                finding.trace_path, finding.meta_path = _write_finding(
                    Path(out_dir), len(report.findings), name, seed, case,
                    shrunk, shrunk_labels, detail, workload.n_packets)
        elif out_dir is not None:
            finding.trace_path, finding.meta_path = _write_finding(
                Path(out_dir), len(report.findings), name, seed,
                None, workload.trace, workload.labels, detail,
                workload.n_packets)
        report.findings.append(finding)
    report.seconds = time.perf_counter() - started
    return report


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Differential scenario fuzzing of the serving matrix")
    parser.add_argument("--seeds", type=int, default=4,
                        help="random seeds on top of the fixed base seed")
    parser.add_argument("--budget-seconds", type=float, default=240.0)
    parser.add_argument("--base-seed", type=int, default=0)
    parser.add_argument("--flows-scale", type=float, default=0.4)
    parser.add_argument("--scenarios", nargs="*", default=None,
                        help="scenario families (default: all registered)")
    parser.add_argument("--full-matrix", action="store_true",
                        help="run build_cases() instead of quick_cases()")
    parser.add_argument("--out", type=Path, default=Path("fuzz-artifacts"),
                        help="directory for shrunk repro artifacts")
    args = parser.parse_args(argv)

    cases = build_cases() if args.full_matrix else quick_cases()
    print(f"scenario-fuzz: {len(cases)} matrix cases, "
          f"1+{args.seeds} seeds, budget {args.budget_seconds:.0f}s")
    report = fuzz_differential(
        n_seeds=args.seeds, budget_seconds=args.budget_seconds,
        base_seed=args.base_seed,
        scenarios=tuple(args.scenarios) if args.scenarios else None,
        cases=cases, flows_scale=args.flows_scale, out_dir=args.out,
        progress=lambda row: print(
            f"  {row['scenario']:<15s} seed={row['seed']:<11d} "
            f"packets={row['n_packets']:<6d} "
            f"{'ok' if row['ok'] else 'DIVERGED'}", flush=True))
    print(f"{len(report.trials)} trials in {report.seconds:.1f}s"
          + (" (budget exhausted)" if report.budget_exhausted else ""))
    if report.ok:
        print("all decision streams bit-identical; stats consistent")
        return 0
    for f in report.findings:
        print(f"FINDING: {f.scenario} seed={f.generate_seed} case={f.case}: "
              f"{f.divergence}")
        print(f"  shrunk {f.original_packets} -> {f.shrunk_packets} packets"
              + (f" ({f.trace_path})" if f.trace_path else ""))
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
