"""Deprecation shims: warn exactly once, forward every argument faithfully.

``repro.serving.compat`` and ``repro.dataplane.compat`` keep the four
pre-engine entry points importable under their old names. Their entire
contract is (a) one ``DeprecationWarning`` per construction — not zero,
not a warning per internal re-entry — pointing at ``PegasusEngine``, and
(b) behaving exactly like the real class they subclass, i.e. every
constructor argument lands unchanged. The engine's own build path uses the
real classes and must stay silent.
"""

import warnings

import numpy as np
import pytest

from repro.core.fuzzy import FuzzyTree
from repro.dataplane import compat as dataplane_compat
from repro.dataplane import runtime as real_runtime
from repro.serving import compat as serving_compat
from repro.serving import dispatcher as real_dispatcher
from repro.serving import parallel as real_parallel
from repro.serving.cache import FlowDecisionCache
from repro.serving.scheduler import BatchScheduler

BATCH = 32


@pytest.fixture(scope="module")
def two_stage_spec():
    rng = np.random.default_rng(2)
    tree = FuzzyTree.fit(rng.uniform(0, 255, size=(200, 60)), n_leaves=8)
    slot_values = [rng.integers(-50, 50, size=(8, 3)) for _ in range(8)]
    return {"extractor_tree": tree, "slot_values": slot_values,
            "n_classes": 3, "idx_bits": 3}


class _StubRuntime:
    """Just enough runtime surface for an unstarted dispatcher to build."""

    def set_lookup_backend(self, name):
        pass


def _factory():
    return _StubRuntime()


def deprecations(record):
    return [w for w in record
            if issubclass(w.category, DeprecationWarning)]


def construct_once(cls, *args, **kwargs):
    """Build ``cls`` asserting exactly one DeprecationWarning is emitted."""
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        obj = cls(*args, **kwargs)
    warned = deprecations(record)
    assert len(warned) == 1, \
        f"{cls.__name__} emitted {len(warned)} DeprecationWarnings, want 1"
    message = str(warned[0].message)
    assert cls.__name__ in message
    assert "PegasusEngine" in message
    return obj


class TestServingShims:
    def test_sharded_dispatcher_warns_once_and_forwards(self):
        scheduler = BatchScheduler(batch_size=BATCH)
        shim = construct_once(serving_compat.ShardedDispatcher,
                              runtime_factory=_factory, n_shards=3,
                              scheduler=scheduler)
        assert isinstance(shim, real_dispatcher.ShardedDispatcher)
        assert shim.runtime_factory is _factory
        assert shim.n_shards == 3
        assert shim.scheduler is scheduler

    def test_parallel_dispatcher_warns_once_and_forwards(self):
        scheduler = BatchScheduler(batch_size=BATCH)
        shim = construct_once(serving_compat.ParallelDispatcher,
                              runtime_factory=_factory, n_workers=2,
                              scheduler=scheduler, payload_bytes=60)
        try:
            assert isinstance(shim, real_parallel.ParallelDispatcher)
            assert shim.runtime_factory is _factory
            assert shim.n_workers == 2
            assert shim.scheduler is scheduler
            assert shim.payload_bytes == 60
        finally:
            shim.close()        # never started: a safe no-op

    def test_real_dispatcher_stays_silent(self):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            real_dispatcher.ShardedDispatcher(runtime_factory=_factory,
                                              n_shards=2)
        assert deprecations(record) == []


class TestDataplaneShims:
    def test_windowed_runtime_warns_once_and_forwards(self, compiled16):
        cache = FlowDecisionCache(64)
        shim = construct_once(dataplane_compat.WindowedClassifierRuntime,
                              compiled16, feature_mode="stats",
                              batch_size=BATCH, decision_cache=cache)
        assert isinstance(shim, real_runtime.WindowedClassifierRuntime)
        assert shim.model is compiled16
        assert shim.feature_mode == "stats"
        assert shim.batch_size == BATCH
        assert shim.decision_cache is cache

    def test_two_stage_runtime_warns_once_and_forwards(self, two_stage_spec):
        shim = construct_once(dataplane_compat.TwoStageRuntime,
                              batch_size=BATCH, **two_stage_spec)
        assert isinstance(shim, real_runtime.TwoStageRuntime)
        assert shim.extractor_tree is two_stage_spec["extractor_tree"]
        assert shim.slot_values is two_stage_spec["slot_values"]
        assert shim.n_classes == two_stage_spec["n_classes"]
        assert shim.idx_bits == two_stage_spec["idx_bits"]
        assert shim.batch_size == BATCH

    def test_real_runtime_stays_silent(self, compiled16):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            real_runtime.WindowedClassifierRuntime(compiled16,
                                                   feature_mode="stats")
        assert deprecations(record) == []


class TestShimBehaviorUnchanged:
    def test_windowed_shim_decisions_match_real_class(self, compiled16,
                                                      replay_flows):
        ref = real_runtime.WindowedClassifierRuntime(
            compiled16, feature_mode="stats",
            batch_size=BATCH).process_flows(replay_flows)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shim = dataplane_compat.WindowedClassifierRuntime(
                compiled16, feature_mode="stats", batch_size=BATCH)
        assert shim.process_flows(replay_flows) == ref
