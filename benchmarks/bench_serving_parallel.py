"""Parallel serving: measured concurrent wall clock across worker processes.

The ``sharded`` engine topology *models* parallel wall clock as
``max(shard_seconds)``; the ``parallel`` topology measures it. Every stack
here is built by ``PegasusEngine`` from one ``EngineConfig`` (see
``run_parallel_throughput``), fanning the Figure-8 serving mix out to
persistent multiprocessing workers over shared-memory ring buffers (the
payload path never pickles — ``repro/serving/rings.py``), with and without
the per-replica flow-decision cache.

Asserted here: every parallel configuration's decisions are **bit-identical**
to the serial dispatcher's, and — on hosts with >= 4 usable cores (CI's
runners) — measured wall-clock throughput at 4 workers is >= 2.5x the
1-worker run. On narrower hosts the gate cannot mean anything, so it is
skipped *loudly* and the JSON records the ``"single_core"`` sentinel (plus
the raw measured ratio in ``*_raw``) instead of a misleading bare number:
a 0.84x "speedup" from a one-core container is a fact about the host, not
the dataplane. Results land in the ``parallel`` section of
``BENCH_serving.json`` for the CI regression gate.
"""

import os

from repro.eval.reporting import render_table, update_bench_json
from repro.eval.runner import run_parallel_throughput

#: The multicore scaling floor gated on >= 4-core hosts.
SPEEDUP_FLOOR = 2.5


def _usable_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _run(scale):
    return run_parallel_throughput(flows_per_class=scale["flows_per_class"],
                                   seed=scale["seed"])


def test_throughput_parallel(benchmark, bench_scale):
    res = benchmark.pedantic(_run, args=(bench_scale,), rounds=1, iterations=1)
    rows = []
    for n, entry in sorted(res["workers"].items()):
        rows.append([f"workers={n}", entry["serial_pps"],
                     entry["parallel"]["pps"],
                     entry["parallel_cached"]["pps"],
                     entry["parallel_cached"]["cache_hit_rate"],
                     entry["decisions"]])
    cores = _usable_cores()
    speedup = res["speedup_4_vs_1"]
    speedup_cached = res["speedup_4_vs_1_cached"]
    multicore = cores >= 4
    print()
    print(render_table(
        ["config", "serial_pps", "parallel_pps", "cached_pps", "hit_rate",
         "decisions"], rows,
        title=f"Parallel serving throughput — {res['n_packets']} packets, "
              f"{cores} cores, "
              f"4-vs-1 speedup {speedup:.2f}x "
              f"({speedup_cached:.2f}x cached)"))

    update_bench_json("parallel", {
        "n_packets": res["n_packets"],
        "cores": cores,
        "pps": {n: e["parallel"]["pps"] for n, e in res["workers"].items()},
        "pps_cached": {n: e["parallel_cached"]["pps"]
                       for n, e in res["workers"].items()},
        "serial_pps": {n: e["serial_pps"] for n, e in res["workers"].items()},
        # On a host that cannot parallelize, the gated metrics carry the
        # "single_core" sentinel — never a bare sub-1.0 ratio a reader (or
        # the regression gate) could mistake for a dataplane regression.
        # The raw measured ratios stay available under *_raw.
        "speedup_4_vs_1": speedup if multicore else "single_core",
        "speedup_4_vs_1_cached":
            speedup_cached if multicore else "single_core",
        "speedup_4_vs_1_raw": speedup,
        "speedup_4_vs_1_cached_raw": speedup_cached,
        "speedup_gated": multicore,
        "cache_hit_rate": res["cache_hit_rate"],
        "all_match_serial": res["all_match_serial"],
    })

    # Concurrency must never change a single decision.
    assert res["all_match_serial"]
    # Real wall-clock scaling needs real cores; CI runners have >= 4.
    if multicore:
        assert speedup >= SPEEDUP_FLOOR, (
            f"4-vs-1 speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x "
            f"floor on a {cores}-core host")
    else:
        print(f"SKIPPED speedup gate: needs >= 4 usable cores, host has "
              f"{cores}; raw 4-vs-1 ratio {speedup:.2f}x recorded under "
              f"speedup_4_vs_1_raw, gated metric set to 'single_core'")
